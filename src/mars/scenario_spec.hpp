#pragma once
// ScenarioSpec: the JSON-facing description of one trial.
//
// A spec names a topology, a fault schedule, and the systems to deploy,
// plus optional overrides of the tuned scenario knobs. Everything NOT
// mentioned keeps the paper-default value from default_scenario(), so a
// minimal spec like
//
//   {"seed": 7, "faults": [{"kind": "rate", "at_s": 3.0}]}
//
// produces exactly the same ScenarioConfig — and therefore the same
// ranked culprit lists and overhead report — as the hard-coded
// default_scenario(kProcessRateDecrease, 7). serialize/parse are exact
// inverses on the spec's set fields (round-trip fixed point), which keeps
// specs diffable and machine-rewritable for sweeps.

#include <optional>
#include <string>
#include <vector>

#include "mars/scenario.hpp"

namespace mars {

struct ScenarioSpec {
  /// Human label, carried through to reports.
  std::string name = "scenario";

  // ---- topology ----
  std::string topology = "fat-tree";  ///< net::TopologyRegistry key
  std::optional<int> k;               ///< fat-tree arity
  std::optional<int> leaves, spines;  ///< leaf-spine shape
  std::optional<double> edge_gbps, core_gbps;
  /// Per-link propagation delay in microseconds (all links). Datacenter
  /// fibre runs ~1–10 µs; larger values widen the sharded engine's
  /// conservative lookahead window.
  std::optional<double> propagation_us;
  std::optional<std::uint32_t> queue_capacity;

  // ---- workload ----
  std::optional<int> flows;
  std::optional<double> pps;
  std::optional<double> inter_pod_fraction;

  // ---- trial ----
  std::optional<double> duration_s;
  std::uint64_t seed = 1;
  /// Systems to deploy (SystemRegistry names); unset = all four.
  std::optional<std::vector<std::string>> systems;

  /// One scheduled fault, in spec units (seconds).
  struct Fault {
    std::string kind = "rate";  ///< faults::kind_from_name name
    double at_s = 3.0;
    std::optional<double> duration_s;  ///< unset = injector default
    std::optional<net::SwitchId> target_switch;
    std::optional<net::PortId> target_port;
    /// Gray-kind parameter block ("gray"). Only valid on flap / slowdrain
    /// / asymloss / gateddelay events; unset fields keep the injector
    /// defaults. Maps 1:1 onto faults::GrayParams.
    struct Gray {
      std::optional<double> mean_up_ms;    ///< flap: mean healthy dwell
      std::optional<double> mean_down_ms;  ///< flap: mean down-burst dwell
      std::optional<int> fanout;           ///< flap: correlated port count
      std::optional<double> loss_fwd;      ///< asymloss: forward drop prob
      std::optional<double> loss_rev;      ///< asymloss: reverse drop prob
      std::optional<double> drain_us_per_pkt;  ///< slowdrain penalty
      std::optional<std::uint32_t> gate_depth;  ///< gateddelay threshold
      std::optional<double> gate_delay_ms;      ///< gateddelay latency

      [[nodiscard]] bool any_set() const {
        return mean_up_ms || mean_down_ms || fanout || loss_fwd ||
               loss_rev || drain_us_per_pkt || gate_depth || gate_delay_ms;
      }
      friend bool operator==(const Gray&, const Gray&) = default;
    };
    Gray gray;

    friend bool operator==(const Fault&, const Fault&) = default;
  };
  /// Empty = healthy control run.
  std::vector<Fault> faults;

  /// Degraded control-channel model + controller hardening knobs, in spec
  /// units (probabilities and seconds). Unset fields keep the defaults —
  /// a spec without a channel block runs a perfect channel.
  struct Channel {
    std::optional<double> notification_loss;
    std::optional<double> notification_delay_prob;
    std::optional<double> notification_delay_min_s;
    std::optional<double> notification_delay_max_s;
    std::optional<double> read_failure;
    std::optional<double> record_loss;
    std::optional<double> record_corruption;
    std::optional<double> read_deadline_s;
    std::optional<double> retry_backoff_s;
    std::optional<std::uint32_t> max_read_retries;

    [[nodiscard]] bool any_set() const {
      return notification_loss || notification_delay_prob ||
             notification_delay_min_s || notification_delay_max_s ||
             read_failure || record_loss || record_corruption ||
             read_deadline_s || retry_backoff_s || max_read_retries;
    }
    friend bool operator==(const Channel&, const Channel&) = default;
  };
  Channel channel;

  /// Telemetry-export backend block ("telemetry"). Unset runs the paper's
  /// postcard ring tables; {"backend": "int-md"} or {"backend":
  /// "histogram"} swaps the export mode behind the common
  /// telemetry::TelemetryBackend interface (see DESIGN.md "Telemetry
  /// backends"). Sub-blocks tune the named backend and are accepted even
  /// when another backend is selected (they are simply inert).
  struct Telemetry {
    std::optional<std::string> backend;  ///< telemetry::backend_from_name
    std::optional<std::uint32_t> ring_capacity;  ///< sink export store
    struct IntMd {
      std::optional<std::uint32_t> sample_every;
      std::optional<std::uint32_t> max_hops;

      [[nodiscard]] bool any_set() const { return sample_every || max_hops; }
      friend bool operator==(const IntMd&, const IntMd&) = default;
    };
    IntMd int_md;
    struct Histogram {
      std::optional<std::uint32_t> buckets;
      std::optional<std::uint32_t> sub_bucket_bits;
      std::optional<double> tail_latency_ms;
      std::optional<double> trigger_enter;
      std::optional<double> trigger_exit;
      std::optional<std::uint32_t> digest_capacity;

      [[nodiscard]] bool any_set() const {
        return buckets || sub_bucket_bits || tail_latency_ms ||
               trigger_enter || trigger_exit || digest_capacity;
      }
      friend bool operator==(const Histogram&, const Histogram&) = default;
    };
    Histogram histogram;
    /// PathID field shape (§4.1): hash generator + carried width. Wider
    /// ids collide less but cost header bytes; scenario validation
    /// rejects shapes whose collisions cannot be resolved.
    struct PathId {
      std::optional<std::string> hash;  ///< telemetry::hash_from_name
      std::optional<std::uint32_t> width_bits;

      [[nodiscard]] bool any_set() const { return hash || width_bits; }
      friend bool operator==(const PathId&, const PathId&) = default;
    };
    PathId path_id;

    [[nodiscard]] bool any_set() const {
      return backend || ring_capacity || int_md.any_set() ||
             histogram.any_set() || path_id.any_set();
    }
    friend bool operator==(const Telemetry&, const Telemetry&) = default;
  };
  Telemetry telemetry;

  /// FSM mining engine knobs (§4.4.2 / Fig. 11). Unset keeps the default:
  /// threads = 1, i.e. fully sequential mining with no pool.
  struct Mining {
    std::optional<std::uint32_t> threads;

    [[nodiscard]] bool any_set() const { return threads.has_value(); }
    friend bool operator==(const Mining&, const Mining&) = default;
  };
  Mining mining;

  /// RCA hardening block ("rca"). The accumulator turns on multi-epoch
  /// evidence accumulation (DESIGN.md "Gray failures") — off by default,
  /// so specs without this block grade exactly as before.
  struct Rca {
    struct Accumulator {
      std::optional<bool> enabled;
      std::optional<double> half_life_s;
      std::optional<std::uint32_t> max_windows;

      [[nodiscard]] bool any_set() const {
        return enabled || half_life_s || max_windows;
      }
      friend bool operator==(const Accumulator&,
                             const Accumulator&) = default;
    };
    Accumulator accumulator;
    /// Grade only the newest post-fault diagnosis session (true
    /// single-window SBFL) — the baseline the accumulator is measured
    /// against. Ignored when the accumulator is enabled.
    std::optional<bool> single_window;

    [[nodiscard]] bool any_set() const {
      return accumulator.any_set() || single_window.has_value();
    }
    friend bool operator==(const Rca&, const Rca&) = default;
  };
  Rca rca;

  /// Sharded-simulation block ("sim"). Unset runs the classic
  /// single-queue engine; {"shards": N} runs N topology shards with
  /// conservative lookahead on a thread pool (see DESIGN.md).
  struct Sim {
    std::optional<int> shards;                 ///< must be in [1, 64]
    std::optional<double> control_latency_s;   ///< notification latency

    [[nodiscard]] bool any_set() const {
      return shards || control_latency_s;
    }
    friend bool operator==(const Sim&, const Sim&) = default;
  };
  Sim sim;

  /// Ops-plane block ("obs"): event-log admission, flight recorder,
  /// provenance. The knobs land in ScenarioConfig::obs and take effect
  /// only when the runner attaches an Observability bundle (mars_cli does
  /// whenever any obs output flag is given).
  struct Obs {
    std::optional<std::string> log_level;  ///< "debug"|"info"|"warn"|"error"
    std::optional<double> log_rate_limit_per_s;
    std::optional<std::uint32_t> log_rate_limit_burst;
    struct FlightRecorder {
      std::optional<bool> enabled;
      std::optional<std::uint32_t> capacity;
      std::optional<double> confidence_threshold;

      [[nodiscard]] bool any_set() const {
        return enabled || capacity || confidence_threshold;
      }
      friend bool operator==(const FlightRecorder&,
                             const FlightRecorder&) = default;
    };
    FlightRecorder flight_recorder;
    std::optional<bool> provenance;

    [[nodiscard]] bool any_set() const {
      return log_level || log_rate_limit_per_s || log_rate_limit_burst ||
             flight_recorder.any_set() || provenance;
    }
    friend bool operator==(const Obs&, const Obs&) = default;
  };
  Obs obs;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;

  /// Lower the spec onto a runnable config: start from
  /// default_scenario(first fault kind, seed) and apply only the fields
  /// this spec sets. Throws std::invalid_argument on unknown names.
  [[nodiscard]] ScenarioConfig to_config() const;

  /// Everything wrong with this spec (unknown topology/system/fault names,
  /// out-of-range values), as descriptive sentences; empty means
  /// to_config() + run_scenario will accept it.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Serialize to JSON (only set fields are written). `indent` as in
/// obs::JsonWriter; 0 = compact.
[[nodiscard]] std::string to_json(const ScenarioSpec& spec, int indent = 2);

/// Parse a spec document. Unknown keys are errors (they are almost always
/// typos that would otherwise silently run the default). Throws
/// std::invalid_argument with a "line L, column C" or field-path message.
[[nodiscard]] ScenarioSpec parse_scenario_spec(std::string_view json);

/// Load and parse a spec file. Throws std::invalid_argument (unreadable
/// file or parse/validation failure, message names the file).
[[nodiscard]] ScenarioSpec load_scenario_spec(const std::string& path);

}  // namespace mars
