#include "mars/system_registry.hpp"

#include <stdexcept>
#include <utility>

#include "baselines/intsight.hpp"
#include "baselines/spidermon.hpp"
#include "baselines/syndb.hpp"
#include "mars/mars.hpp"
#include "mars/scenario.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace mars {

namespace {

std::unique_ptr<systems::TelemetrySystem> make_mars(
    net::Network& network, const ScenarioConfig& config, Observability* obs) {
  MarsConfig mars_config = config.mars;
  // Mix the trial seed into the chaos stream so sweep trials decorrelate:
  // two trials that differ only in seed must see different drops.
  std::uint64_t trial_seed = config.seed;
  mars_config.channel.seed ^= util::splitmix64(trial_seed);
  if (obs != nullptr) {
    mars_config.metrics = &obs->registry;
    mars_config.tracer = &obs->tracer;
    mars_config.log = &obs->log;
    if (config.obs.provenance) mars_config.provenance = &obs->provenance;
    if (config.obs.flight_recorder) mars_config.recorder = &obs->recorder;
  }
  // The MarsSystem constructor attaches its pipeline observer and
  // registers the "mars." gauge family itself.
  return std::make_unique<MarsSystem>(network, mars_config);
}

/// Construct a baseline, attach it as a packet observer, and register its
/// overhead gauges when observability is on.
template <typename System>
std::unique_ptr<systems::TelemetrySystem> deploy_baseline(
    std::unique_ptr<System> system, net::Network& network,
    Observability* obs) {
  network.add_observer(*system);
  if (obs != nullptr) system->register_metrics(obs->registry);
  return system;
}

std::unique_ptr<systems::TelemetrySystem> make_spidermon(
    net::Network& network, const ScenarioConfig& config, Observability* obs) {
  return deploy_baseline(
      std::make_unique<baselines::SpiderMon>(network.switch_count(),
                                             config.spidermon),
      network, obs);
}

std::unique_ptr<systems::TelemetrySystem> make_intsight(
    net::Network& network, const ScenarioConfig& config, Observability* obs) {
  return deploy_baseline(
      std::make_unique<baselines::IntSight>(config.intsight), network, obs);
}

std::unique_ptr<systems::TelemetrySystem> make_syndb(
    net::Network& network, const ScenarioConfig& config, Observability* obs) {
  return deploy_baseline(std::make_unique<baselines::SynDb>(config.syndb),
                         network, obs);
}

}  // namespace

SystemRegistry& SystemRegistry::instance() {
  static SystemRegistry registry = [] {
    SystemRegistry r;
    r.add("mars", make_mars);
    r.add("spidermon", make_spidermon);
    r.add("intsight", make_intsight);
    r.add("syndb", make_syndb);
    return r;
  }();
  return registry;
}

void SystemRegistry::add(std::string name, Factory factory) {
  for (auto& entry : entries_) {
    if (entry.name == name) {  // re-registration replaces
      entry.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back(Entry{std::move(name), std::move(factory)});
}

const SystemRegistry::Entry* SystemRegistry::find(
    std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

bool SystemRegistry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

std::vector<std::string> SystemRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.name);
  return out;
}

std::string SystemRegistry::known_names() const {
  std::string out;
  for (const auto& entry : entries_) {
    if (!out.empty()) out += ", ";
    out += entry.name;
  }
  return out;
}

std::unique_ptr<systems::TelemetrySystem> SystemRegistry::create(
    std::string_view name, net::Network& network,
    const ScenarioConfig& config, Observability* observability) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown telemetry system '" +
                                std::string(name) +
                                "' (known: " + known_names() + ")");
  }
  return entry->factory(network, config, observability);
}

}  // namespace mars
