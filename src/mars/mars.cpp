#include "mars/mars.hpp"

#include <algorithm>
#include <map>

#include "control/path_registry_cache.hpp"
#include "sim/sharded.hpp"

namespace mars {

MarsSystem::MarsSystem(net::Network& network, MarsConfig config)
    : network_(&network), config_(config),
      accumulator_(config.rca.accumulator) {
  const bool sharded = network.is_sharded();
  config_.pipeline.sharded = sharded;
  registry_ = control::PathRegistryCache::instance().get_or_build(
      network.topology(), network.routing(), config_.pipeline.path_id);
  if (config_.log != nullptr) {
    registry_->log_audit(*config_.log, 0);
  }
  if (config_.provenance != nullptr) {
    const auto& audit = registry_->audit();
    config_.provenance->add_node(
        obs::ProvenanceGraph::NodeKind::kRegistry,
        {{"paths", std::uint64_t{audit.path_count}},
         {"hash", telemetry::hash_name(audit.config.hash)},
         {"width_bits", std::uint64_t{audit.config.width_bits}},
         {"initial_collisions", std::uint64_t{audit.initial_collisions}},
         {"mat_entries", std::uint64_t{audit.mat_entries}},
         {"conflict_free", std::uint64_t{audit.conflict_free ? 1u : 0u}}});
  }

  if (sharded) {
    // Notifications cross shards as control mail: posted from the sending
    // switch's shard thread, keyed on its lane, delivered to the global
    // (control-plane) simulator control_latency later. The degraded
    // channel model is not built — validation restricts sharded runs to a
    // perfect channel, and a perfect channel equals no channel.
    pipeline_ = std::make_unique<dataplane::MarsPipeline>(
        network.topology().switch_count(), config_.pipeline,
        [this](const dataplane::Notification& n) {
          auto* ssim = network_->sharded();
          sim::Lane& lane = network_->node(n.origin).lane();
          ssim->post_control(
              network_->shard_of(n.origin),
              lane.now() + ssim->control_latency(), lane.next_key(),
              sim::EventFn([this, n] { controller_->on_notification(n); }));
        });
  } else {
    pipeline_ = std::make_unique<dataplane::MarsPipeline>(
        network.topology().switch_count(), config_.pipeline,
        [this](const dataplane::Notification& n) { channel_->offer(n); });
  }
  pipeline_->set_control_mat(registry_->mat());

  if (!sharded) {
    channel_ = std::make_unique<control::ControlChannel>(
        network.simulator(), *pipeline_, config_.channel);
    channel_->set_deliver([this](const dataplane::Notification& n) {
      controller_->on_notification(n);
    });
  }

  controller_ = std::make_unique<control::Controller>(network, *pipeline_,
                                                      config_.controller);
  if (channel_) controller_->set_channel(channel_.get());
  analyzer_ = std::make_unique<rca::RootCauseAnalyzer>(
      *registry_, config_.rca, &network.topology());
  if (config_.log != nullptr) {
    controller_->set_event_log(config_.log);
    if (channel_) channel_->set_event_log(config_.log);
  }
  if (config_.provenance != nullptr) {
    controller_->set_provenance(config_.provenance);
    analyzer_->set_provenance(config_.provenance);
  }
  controller_->set_diagnosis_callback([this](const control::DiagnosisData& d) {
    auto analysis = analyzer_->analyze_with_stats(d);
    diagnoses_.push_back(
        Diagnosis{d, std::move(analysis.culprits), analysis.mining});
    const auto& diag = diagnoses_.back();
    if (accumulator_.config().enabled) {
      // Stamp the window with the session's TRIGGER time, not the (later)
      // collection time: ranked(fault_start) must see exactly the
      // sessions the union-merge grades — a session triggered by
      // pre-fault ambient noise whose collection happens to finish after
      // fault onset would otherwise leak loud spurious suspects (sparse
      // pre-incident stats make SBFL ratios spike) into the graded range.
      accumulator_.observe(diag.culprits, d.trigger.when);
    }
    if (config_.tracer != nullptr) {
      // Close the virtual-time causal chain: trigger -> diagnosis.
      obs::SpanArgs args{
          {"trigger", dataplane::kind_name(d.trigger.kind)},
          {"culprits", std::uint64_t{diag.culprits.size()}}};
      if (!d.provenance_id.empty()) args.push_back({"prov", d.provenance_id});
      config_.tracer->complete("diagnosis", "mars", d.trigger.when,
                               d.collected_at, args);
    }
    if (config_.log != nullptr) {
      const obs::LogLevel level = diag.culprits.empty()
                                      ? obs::LogLevel::kError
                                      : obs::LogLevel::kInfo;
      config_.log->log(
          level, d.collected_at, "mars",
          diag.culprits.empty() ? "diagnosis_empty" : "diagnosis_complete",
          {{"trigger", dataplane::kind_name(d.trigger.kind)},
           {"culprits", std::uint64_t{diag.culprits.size()}},
           {"confidence", d.quality.confidence()},
           {"top", diag.culprits.empty() ? std::string("none")
                                         : diag.culprits.front().describe()}});
    }
    if (config_.recorder != nullptr &&
        (diag.culprits.empty() ||
         config_.recorder->should_trigger(d.quality.confidence()))) {
      // Black-box dump: the diagnosis either aborted (no culprits) or
      // completed on degraded evidence — preserve the recent event window.
      config_.recorder->trigger(diag.culprits.empty() ? "diagnosis_empty"
                                                      : "low_confidence",
                                d.collected_at);
    }
  });

  if (config_.tracer != nullptr) {
    // Sharded: the pipeline's callbacks run on shard threads, where the
    // tracer/histogram would race; controller and analyzer run in the
    // single-threaded global domain and keep their hooks.
    if (!sharded) pipeline_->set_tracer(config_.tracer);
    controller_->set_tracer(config_.tracer);
    analyzer_->set_tracer(config_.tracer);
  }
  if (config_.metrics != nullptr) {
    if (!sharded) pipeline_->set_metrics(config_.metrics);
    analyzer_->set_metrics(config_.metrics);
    register_metrics(*config_.metrics);
  }

  network.add_observer(*pipeline_);
}

MarsSystem::~MarsSystem() {
  // The "mars." and "telemetry." gauges capture `this`; they must not
  // outlive us.
  if (config_.metrics != nullptr) {
    config_.metrics->remove_gauges("mars.");
    config_.metrics->remove_gauges("telemetry.");
  }
}

void MarsSystem::register_metrics(obs::MetricsRegistry& registry) {
  registry.gauge("mars.pathid.ambiguous_lookups", [this] {
    return static_cast<double>(registry_->ambiguous_lookups());
  });
  registry.gauge("mars.pathid.mat_entries", [this] {
    return static_cast<double>(registry_->mat_entry_count());
  });
  registry.gauge("mars.telemetry_bytes", [this] {
    return static_cast<double>(overheads().telemetry_bytes);
  });
  registry.gauge("mars.diagnosis_bytes", [this] {
    return static_cast<double>(overheads().diagnosis_bytes);
  });
  registry.gauge("mars.triggered",
                 [this] { return triggered() ? 1.0 : 0.0; });
  registry.gauge("mars.notifications", [this] {
    return static_cast<double>(pipeline_->overheads().notifications);
  });
  registry.gauge("mars.notifications_suppressed", [this] {
    return static_cast<double>(pipeline_->overheads().window_suppressed);
  });
  registry.gauge("mars.telemetry_packets_marked", [this] {
    return static_cast<double>(
        pipeline_->overheads().telemetry_packets_marked);
  });
  registry.gauge("mars.diagnoses", [this] {
    return static_cast<double>(diagnoses_.size());
  });
  registry.gauge("mars.reservoirs", [this] {
    return static_cast<double>(controller_->reservoir_count());
  });
  registry.gauge("mars.reservoir_fill", [this] {
    return controller_->mean_reservoir_fill();
  });
  registry.gauge("mars.confidence",
                 [this] { return confidence().value_or(1.0); });
  registry.gauge("mars.presence",
                 [this] { return presence().value_or(1.0); });
  registry.gauge("mars.accumulator.windows", [this] {
    return static_cast<double>(accumulator_.window_count(0));
  });
  if (channel_ != nullptr) {
    registry.gauge("mars.channel.notifications_dropped", [this] {
      return static_cast<double>(channel_->stats().notifications_dropped);
    });
    registry.gauge("mars.channel.notifications_delayed", [this] {
      return static_cast<double>(channel_->stats().notifications_delayed);
    });
    registry.gauge("mars.channel.reads_failed", [this] {
      return static_cast<double>(channel_->stats().reads_failed);
    });
    registry.gauge("mars.channel.records_lost", [this] {
      return static_cast<double>(channel_->stats().records_lost);
    });
    registry.gauge("mars.channel.records_corrupted", [this] {
      return static_cast<double>(channel_->stats().records_corrupted);
    });
  }
  registry.gauge("mars.controller.poll_fallbacks", [this] {
    return static_cast<double>(controller_->overheads().poll_reads_failed);
  });
  registry.gauge("mars.controller.drain_retry_rounds", [this] {
    return static_cast<double>(controller_->overheads().drain_retry_rounds);
  });
  registry.gauge("mars.controller.drains_abandoned", [this] {
    return static_cast<double>(controller_->overheads().drains_abandoned);
  });
  registry.gauge("mars.controller.records_quarantined", [this] {
    return static_cast<double>(controller_->overheads().records_quarantined);
  });
  registry.gauge("mars.controller.partial_sessions", [this] {
    return static_cast<double>(controller_->overheads().partial_sessions);
  });
  registry.gauge("mars.ring_occupancy", [this] {
    // Mean edge-switch export-store fill fraction (the paper's Fig. 10
    // memory argument made observable; ring tables, INT-MD stores, and
    // digest rings all report through the backend).
    const auto edges =
        network_->topology().switches_in_layer(net::Layer::kEdge);
    if (edges.empty()) return 0.0;
    const auto& backend = pipeline_->backend();
    const auto capacity = static_cast<double>(backend.store_capacity());
    if (capacity <= 0.0) return 0.0;
    double sum = 0.0;
    for (const net::SwitchId sw : edges) {
      sum += static_cast<double>(backend.store_size(sw)) / capacity;
    }
    return sum / static_cast<double>(edges.size());
  });
  // Export-backend accounting (bandwidth-vs-accuracy frontier inputs).
  registry.gauge("telemetry.backend.inband_bytes", [this] {
    return static_cast<double>(pipeline_->backend().counters().inband_bytes);
  });
  registry.gauge("telemetry.backend.records", [this] {
    return static_cast<double>(pipeline_->backend().counters().records);
  });
  registry.gauge("telemetry.backend.epochs", [this] {
    return static_cast<double>(pipeline_->backend().counters().epochs);
  });
  registry.gauge("telemetry.backend.triggers", [this] {
    return static_cast<double>(pipeline_->backend().counters().triggers);
  });
}

std::optional<double> MarsSystem::confidence() const {
  if (diagnoses_.empty()) return std::nullopt;
  double worst = 1.0;
  for (const auto& d : diagnoses_) {
    worst = std::min(worst, d.session.quality.confidence());
  }
  // Flap-aware calibration: evidence completeness says how good each
  // window was; presence says how many windows the suspect showed up in.
  // Both discount independently.
  if (const auto p = presence()) worst *= *p;
  return worst;
}

std::optional<double> MarsSystem::presence() const {
  if (!accumulator_.config().enabled || accumulator_.window_count(0) == 0) {
    return std::nullopt;
  }
  return accumulator_.top_presence(0);
}

rca::CulpritList MarsSystem::culprits_for(sim::Time fault_start) const {
  // Intermittency-hardened path: with the accumulator enabled, the graded
  // list is the decayed multi-epoch ranking — a culprit seen in several
  // windows outranks a one-window ambient suspect even if any single
  // window scored the latter higher.
  if (accumulator_.config().enabled &&
      accumulator_.window_count(fault_start) > 0) {
    rca::CulpritList out = accumulator_.ranked(fault_start);
    if (out.size() > 20) out.resize(20);
    return out;
  }
  // Baseline/ablation path: true single-window SBFL — the newest
  // post-fault session's ranking alone, no cross-session merging. This is
  // what the gray-failure benchmark grades as "single" so the accumulator
  // is measured against the per-epoch ranking it actually replaces, not
  // against the union-merge below (itself a multi-window strategy).
  if (config_.rca.single_window) {
    for (auto it = diagnoses_.rbegin(); it != diagnoses_.rend(); ++it) {
      if (it->session.trigger.when >= fault_start) return it->culprits;
    }
    if (diagnoses_.empty()) return {};
    return diagnoses_.back().culprits;
  }
  // A fault can surface across several diagnosis sessions (e.g. a stalled
  // queue's loss evidence arrives during the fault, its latency evidence
  // when the queue flushes). The operator-facing answer is the union of
  // the post-fault reports: duplicates keep their best score.
  struct Key {
    rca::CauseKind cause;
    rca::CulpritLevel level;
    std::vector<net::SwitchId> location;
    net::PortId port;
    net::FlowId flow;
    bool operator<(const Key& other) const {
      if (cause != other.cause) return cause < other.cause;
      if (level != other.level) return level < other.level;
      if (location != other.location) return location < other.location;
      if (port != other.port) return port < other.port;
      return flow < other.flow;
    }
  };
  std::map<Key, rca::Culprit> merged;
  bool any = false;
  for (const auto& d : diagnoses_) {
    if (d.session.trigger.when < fault_start) continue;
    any = true;
    for (const auto& c : d.culprits) {
      Key key{c.cause, c.level, c.location, c.port, c.flow};
      auto [it, inserted] = merged.try_emplace(std::move(key), c);
      if (!inserted) it->second.score = std::max(it->second.score, c.score);
    }
  }
  if (!any) {
    if (diagnoses_.empty()) return {};
    return diagnoses_.back().culprits;
  }

  // Cross-session refinement: a location reported as Drop by an early
  // session and as a latency-signature cause by a later one (after the
  // stalled queue flushed its evidence) is ONE culprit — the loss is the
  // congestion's shadow. Fold the drop score into the refined cause. The
  // match is exact (switch set AND port): a drop on one port of a switch
  // must not be absorbed by ambient congestion on a different port.
  using Place = std::pair<std::vector<net::SwitchId>, net::PortId>;
  std::map<Place, double> drop_scores;
  for (const auto& [key, culprit] : merged) {
    if (culprit.cause == rca::CauseKind::kDrop) {
      drop_scores[{culprit.location, culprit.port}] += culprit.score;
    }
  }
  for (auto& [key, culprit] : merged) {
    if (culprit.cause == rca::CauseKind::kDrop ||
        culprit.cause == rca::CauseKind::kMicroBurst) {
      continue;
    }
    if (const auto it = drop_scores.find({culprit.location, culprit.port});
        it != drop_scores.end() && it->second > 0) {
      culprit.score += it->second;
      it->second = -1.0;  // consumed
    }
  }
  for (auto it = merged.begin(); it != merged.end();) {
    const bool consumed_drop =
        it->second.cause == rca::CauseKind::kDrop &&
        drop_scores.count({it->second.location, it->second.port}) &&
        drop_scores[{it->second.location, it->second.port}] < 0;
    it = consumed_drop ? merged.erase(it) : std::next(it);
  }

  rca::CulpritList out;
  out.reserve(merged.size());
  for (auto& [key, culprit] : merged) out.push_back(std::move(culprit));
  std::sort(out.begin(), out.end(),
            [](const rca::Culprit& a, const rca::Culprit& b) {
              return a.score > b.score;
            });
  if (out.size() > 20) out.resize(20);
  return out;
}

MarsSystem::Overheads MarsSystem::overheads() const {
  Overheads o;
  const auto p = pipeline_->overheads();
  const auto& c = controller_->overheads();
  o.telemetry_bytes = p.telemetry_bytes;
  o.diagnosis_bytes =
      p.notification_bytes + c.poll_bytes + c.diagnosis_bytes;
  return o;
}

}  // namespace mars
