#pragma once
// MarsSystem: the fully-wired MARS deployment over a simulated network —
// data-plane pipeline on every switch, control plane with per-flow
// reservoirs, PathID registry, and the RCA engine. One object per network;
// attach, start(), run the simulation, read diagnoses().

#include <memory>
#include <vector>

#include "control/controller.hpp"
#include "control/path_registry.hpp"
#include "dataplane/mars_pipeline.hpp"
#include "net/network.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "rca/analyzer.hpp"

namespace mars {

struct MarsConfig {
  dataplane::PipelineConfig pipeline;
  control::ControllerConfig controller;
  rca::RcaConfig rca;
  /// Optional observability hooks (zero overhead when null). The registry
  /// gains "mars."-prefixed gauges reading the pipeline/controller
  /// overheads, ring-table occupancy, and reservoir state; the tracer gets
  /// the notification -> collection -> diagnosis span chain. Both must
  /// outlive the MarsSystem (its destructor removes the "mars." gauges).
  obs::MetricsRegistry* metrics = nullptr;
  obs::SpanTracer* tracer = nullptr;
};

/// One completed diagnosis: the session data and the ranked culprits.
struct Diagnosis {
  control::DiagnosisData session;
  rca::CulpritList culprits;
};

class MarsSystem {
 public:
  /// Builds the registry, attaches the pipeline as an observer, and wires
  /// notifications -> controller -> analyzer. Does not start polling.
  MarsSystem(net::Network& network, MarsConfig config = {});
  ~MarsSystem();

  /// Begin control-plane polling (call once before the simulation runs).
  void start() { controller_->start(); }

  [[nodiscard]] dataplane::MarsPipeline& pipeline() { return *pipeline_; }
  [[nodiscard]] control::Controller& controller() { return *controller_; }
  [[nodiscard]] const control::PathRegistry& registry() const {
    return *registry_;
  }
  [[nodiscard]] const rca::RootCauseAnalyzer& analyzer() const {
    return *analyzer_;
  }

  [[nodiscard]] const std::vector<Diagnosis>& diagnoses() const {
    return diagnoses_;
  }

  /// The culprit list to grade for a fault that started at `fault_start`:
  /// the first diagnosis triggered at or after it (falls back to the last
  /// diagnosis; empty if MARS never triggered).
  [[nodiscard]] rca::CulpritList culprits_for(sim::Time fault_start) const;

  /// Combined data-plane + control-plane overhead (Fig. 9).
  struct Overheads {
    std::uint64_t telemetry_bytes = 0;
    std::uint64_t diagnosis_bytes = 0;
  };
  [[nodiscard]] Overheads overheads() const;

 private:
  void register_metrics(obs::MetricsRegistry& registry);

  net::Network* network_;
  MarsConfig config_;
  std::unique_ptr<control::PathRegistry> registry_;
  std::unique_ptr<dataplane::MarsPipeline> pipeline_;
  std::unique_ptr<control::Controller> controller_;
  std::unique_ptr<rca::RootCauseAnalyzer> analyzer_;
  std::vector<Diagnosis> diagnoses_;
};

}  // namespace mars
