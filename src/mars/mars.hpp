#pragma once
// MarsSystem: the fully-wired MARS deployment over a simulated network —
// data-plane pipeline on every switch, control plane with per-flow
// reservoirs, PathID registry, and the RCA engine. One object per network;
// attach, start(), run the simulation, read diagnoses().

#include <memory>
#include <vector>

#include "control/channel.hpp"
#include "control/controller.hpp"
#include "control/path_registry.hpp"
#include "dataplane/mars_pipeline.hpp"
#include "net/network.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/provenance.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "rca/analyzer.hpp"
#include "systems/telemetry_system.hpp"

namespace mars {

struct MarsConfig {
  dataplane::PipelineConfig pipeline;
  control::ControllerConfig controller;
  /// Control-channel degradation model. The default is perfect — no
  /// drops, no delays, no read failures — and a perfect channel is
  /// bit-identical to having no channel at all.
  control::ChannelConfig channel;
  rca::RcaConfig rca;
  /// Optional observability hooks (zero overhead when null). The registry
  /// gains "mars."-prefixed gauges reading the pipeline/controller
  /// overheads, ring-table occupancy, and reservoir state; the tracer gets
  /// the notification -> collection -> diagnosis span chain. Both must
  /// outlive the MarsSystem (its destructor removes the "mars." gauges).
  obs::MetricsRegistry* metrics = nullptr;
  obs::SpanTracer* tracer = nullptr;
  /// Structured event log: controller retries/quarantines, channel
  /// degradation windows, diagnosis lifecycle (null disables).
  obs::EventLog* log = nullptr;
  /// Diagnosis provenance DAG: session/epoch/pattern/suspect nodes are
  /// appended by the controller and analyzer (null disables).
  obs::ProvenanceGraph* provenance = nullptr;
  /// Flight recorder: triggered automatically when a diagnosis completes
  /// below its confidence threshold or with an empty culprit list.
  obs::FlightRecorder* recorder = nullptr;
};

/// One completed diagnosis: the session data, the ranked culprits, and
/// the cost of the FSM mining passes that produced them.
struct Diagnosis {
  control::DiagnosisData session;
  rca::CulpritList culprits;
  fsm::MiningStats mining;
};

class MarsSystem final : public systems::TelemetrySystem {
 public:
  /// Builds the registry, attaches the pipeline as an observer, and wires
  /// notifications -> controller -> analyzer. Does not start polling.
  MarsSystem(net::Network& network, MarsConfig config = {});
  ~MarsSystem() override;

  [[nodiscard]] std::string_view name() const override { return "MARS"; }

  /// Begin control-plane polling (call once before the simulation runs).
  void start() override { controller_->start(); }

  /// TelemetrySystem grading entry point: the culprits for the queried
  /// fault window. MARS is self-triggering; the expert hint is ignored.
  [[nodiscard]] rca::CulpritList diagnose(
      const systems::DiagnosisQuery& query) override {
    return culprits_for(query.fault_start);
  }

  [[nodiscard]] bool triggered() const override { return !diagnoses_.empty(); }

  /// MARS names causes, and is graded on them (Table 1).
  [[nodiscard]] metrics::MatchOptions match_options() const override {
    return {.require_cause = true};
  }

  /// Worst-case evidence completeness over the graded diagnoses: the
  /// minimum session confidence, or nullopt before any diagnosis. 1.0
  /// exactly when no observable degradation touched any session. With the
  /// evidence accumulator enabled, additionally scaled by the top
  /// suspect's presence — the fraction of diagnosis windows it appeared
  /// in — so an intermittent (flapping) culprit reports proportionally
  /// lower confidence than an always-on one.
  [[nodiscard]] std::optional<double> confidence() const override;

  /// Fraction of diagnosis windows the top accumulated suspect appeared
  /// in; nullopt unless the evidence accumulator is enabled and has
  /// observed at least one diagnosis.
  [[nodiscard]] std::optional<double> presence() const override;

  /// The channel every notification and Ring-Table read crosses;
  /// telemetry FaultKinds schedule their degradation windows here.
  [[nodiscard]] control::ControlChannel* control_channel() override {
    return channel_.get();
  }

  [[nodiscard]] dataplane::MarsPipeline& pipeline() { return *pipeline_; }
  [[nodiscard]] control::Controller& controller() { return *controller_; }
  [[nodiscard]] const control::PathRegistry& registry() const {
    return *registry_;
  }
  [[nodiscard]] const rca::RootCauseAnalyzer& analyzer() const {
    return *analyzer_;
  }

  [[nodiscard]] const std::vector<Diagnosis>& diagnoses() const {
    return diagnoses_;
  }

  /// The culprit list to grade for a fault that started at `fault_start`:
  /// the first diagnosis triggered at or after it (falls back to the last
  /// diagnosis; empty if MARS never triggered).
  [[nodiscard]] rca::CulpritList culprits_for(sim::Time fault_start) const;

  /// Combined data-plane + control-plane overhead (Fig. 9).
  using Overheads = systems::OverheadReport;
  [[nodiscard]] Overheads overheads() const override;

  /// Registers the full "mars." gauge family: overhead bytes plus
  /// pipeline/controller internals (ring occupancy, reservoirs, ...).
  void register_metrics(obs::MetricsRegistry& registry) override;

 private:
  net::Network* network_;
  MarsConfig config_;
  /// Shared immutable snapshot from the process-wide PathRegistryCache:
  /// sweeps and repeated trials over one topology build it exactly once.
  std::shared_ptr<const control::PathRegistry> registry_;
  std::unique_ptr<dataplane::MarsPipeline> pipeline_;
  std::unique_ptr<control::ControlChannel> channel_;
  std::unique_ptr<control::Controller> controller_;
  std::unique_ptr<rca::RootCauseAnalyzer> analyzer_;
  std::vector<Diagnosis> diagnoses_;
  /// Multi-epoch evidence (rca.accumulator.enabled); passive when off.
  rca::EvidenceAccumulator accumulator_;
};

}  // namespace mars
