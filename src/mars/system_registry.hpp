#pragma once
// SystemRegistry: telemetry systems by name. A trial names the systems it
// deploys ("mars", "spidermon", "intsight", "syndb"); each factory
// constructs the system fully wired — observers attached to the network,
// gauges registered when observability is on — so run_scenario and the
// grading code treat all of them uniformly through
// systems::TelemetrySystem. New systems register the same way without
// touching the scenario engine.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "systems/telemetry_system.hpp"

namespace mars {

namespace net {
class Network;
}  // namespace net

struct ScenarioConfig;  // mars/scenario.hpp
struct Observability;

class SystemRegistry {
 public:
  /// Construct a system attached to `network`, configured from the trial
  /// config, with metrics registered on the observability bundle when one
  /// is present (may be nullptr).
  using Factory = std::function<std::unique_ptr<systems::TelemetrySystem>(
      net::Network& network, const ScenarioConfig& config,
      Observability* observability)>;

  /// Process-wide registry, pre-populated with the four paper systems.
  [[nodiscard]] static SystemRegistry& instance();

  /// Register (or replace) a factory under `name`.
  void add(std::string name, Factory factory);

  [[nodiscard]] bool contains(std::string_view name) const;
  /// Registered names, registration order.
  [[nodiscard]] std::vector<std::string> names() const;
  /// "mars, spidermon, ..." — for error messages.
  [[nodiscard]] std::string known_names() const;

  /// Build the named system. Throws std::invalid_argument on an unknown
  /// name, listing the registered ones.
  [[nodiscard]] std::unique_ptr<systems::TelemetrySystem> create(
      std::string_view name, net::Network& network,
      const ScenarioConfig& config, Observability* observability) const;

 private:
  struct Entry {
    std::string name;
    Factory factory;
  };
  [[nodiscard]] const Entry* find(std::string_view name) const;

  std::vector<Entry> entries_;
};

}  // namespace mars
