#pragma once
// run_sweep: the batch driver behind every multi-trial figure.
//
// A sweep is a list of SweepPoints (a ScenarioConfig plus a label); the
// driver fans the points across a thread pool — each trial owns its
// simulator and network, so trials are embarrassingly parallel — and
// merges the per-trial rankings into per-system LocalizationStats
// (Recall@k / Exam Score, Table 1) and overhead totals (Fig. 9). Results
// are index-aligned with the input points and bit-identical to running
// the same configs sequentially: parallelism never changes an outcome.
//
// With collect_observability on, each trial gets its own heap-allocated
// Observability bundle (registry + series + traces), returned alongside
// its result for post-hoc inspection.

#include <memory>
#include <string>
#include <vector>

#include "mars/scenario.hpp"
#include "metrics/ranking.hpp"
#include "parallel/thread_pool.hpp"

namespace mars {

/// One trial of a sweep: the config to run and a human label for reports
/// ("rate/seed=7").
struct SweepPoint {
  ScenarioConfig config;
  std::string label;
};

/// One completed trial, index-aligned with the input points.
struct SweepTrial {
  std::string label;
  ScenarioResult result;
  /// The trial's observability bundle; null unless
  /// SweepOptions::collect_observability was set.
  std::unique_ptr<Observability> observability;
};

/// Cross-trial aggregate for one telemetry system.
struct SystemAggregate {
  std::string system;
  /// One rank per trial that injected at least one fault (rank of the
  /// first ground truth, the Table-1 number).
  metrics::LocalizationStats stats;
  std::uint64_t telemetry_bytes = 0;  ///< summed over trials
  std::uint64_t diagnosis_bytes = 0;  ///< summed over trials
  std::size_t triggered = 0;          ///< trials where the system fired
  std::size_t deployments = 0;        ///< trials deploying this system

  [[nodiscard]] double mean_telemetry_bytes() const {
    return deployments == 0 ? 0.0
                            : static_cast<double>(telemetry_bytes) /
                                  static_cast<double>(deployments);
  }
  [[nodiscard]] double mean_diagnosis_bytes() const {
    return deployments == 0 ? 0.0
                            : static_cast<double>(diagnosis_bytes) /
                                  static_cast<double>(deployments);
  }
};

struct SweepOptions {
  /// Worker threads; 0 = hardware concurrency. Ignored by the
  /// pool-supplied overload.
  std::size_t threads = 0;
  /// Give every trial its own Observability bundle (metrics + series +
  /// traces), returned on the SweepTrial. Samplers add events, so trials
  /// run with observability have a different event fingerprint than bare
  /// ones — consistently so across the whole sweep.
  bool collect_observability = false;
};

struct SweepResult {
  std::vector<SweepTrial> trials;         ///< input order
  std::vector<SystemAggregate> systems;   ///< first-seen order

  [[nodiscard]] const SystemAggregate* find(std::string_view system) const {
    for (const auto& aggregate : systems) {
      if (aggregate.system == system) return &aggregate;
    }
    return nullptr;
  }
};

/// Run every point (validating all of them up front — throws
/// std::invalid_argument naming the offending label before any trial
/// runs) and merge the outcomes. Deterministic: trial i equals
/// run_scenario(points[i].config) regardless of thread count.
[[nodiscard]] SweepResult run_sweep(const std::vector<SweepPoint>& points,
                                    const SweepOptions& options = {});

/// Same, on a caller-owned pool (lets several sweeps share workers).
[[nodiscard]] SweepResult run_sweep(parallel::ThreadPool& pool,
                                    const std::vector<SweepPoint>& points,
                                    const SweepOptions& options = {});

/// `count` copies of `base` with seeds first_seed, first_seed+1, ...
/// labelled "<prefix>seed=<n>".
[[nodiscard]] std::vector<SweepPoint> seed_sweep(
    const ScenarioConfig& base, std::uint64_t first_seed, std::size_t count,
    const std::string& label_prefix = "");

/// The paper's Table-1 grid: default_scenario for every fault kind ×
/// `seeds_per_fault` seeds starting at first_seed.
[[nodiscard]] std::vector<SweepPoint> fault_grid(std::uint64_t first_seed,
                                                 std::size_t seeds_per_fault);

}  // namespace mars
