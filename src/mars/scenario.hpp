#pragma once
// ScenarioRunner: one fault-injection trial, end to end (paper §5.2–5.4).
//
// A trial is declarative: a topology picked from the TopologyRegistry by
// name, a set of telemetry systems picked from the SystemRegistry by name
// (MARS and the baselines deploy behind the same interface), background
// traffic, and a FaultSchedule of zero or more injections. run_scenario
// builds the fabric, deploys the named systems side by side on the same
// packets, warms the reservoirs, applies the schedule, and returns every
// system's ranked culprit list plus overhead accounting and the ground
// truths. Trials are deterministic in their seed, and independent trials
// can run on separate threads (each owns its simulator and network); see
// mars/sweep.hpp for the batch driver.

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/intsight.hpp"
#include "baselines/spidermon.hpp"
#include "baselines/syndb.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "mars/mars.hpp"
#include "metrics/ranking.hpp"
#include "net/topology_registry.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "workload/traffic_gen.hpp"

namespace mars {

/// Caller-owned observability bundle for one trial. When attached to a
/// ScenarioConfig, run_scenario scrapes the network and every deployed
/// system onto `registry`, runs a periodic Sampler into `series`, routes
/// the MARS pipeline/controller/RCA spans into `tracer`, and leaves a
/// final `snapshot` taken just before the scenario-scoped gauges are
/// removed (so the bundle stays safe to read after the trial).
///
/// Attaching observability schedules sampler events, so the trial's event
/// fingerprint differs from an unobserved run; the determinism contract
/// (same seed => same result) still holds for a fixed configuration.
struct Observability {
  obs::MetricsRegistry registry;
  obs::SpanTracer tracer;
  obs::SeriesStore series;
  /// Registry state at end-of-run (gauges still attached when taken).
  obs::MetricsSnapshot snapshot;
  /// Structured NDJSON event log (admission configured by
  /// ScenarioConfig::obs; empty when the trial logged nothing).
  obs::EventLog log;
  /// Black-box ring of recent events + metric deltas; dumps accumulate
  /// when a diagnosis aborts or completes below its confidence threshold.
  obs::FlightRecorder recorder;
  /// Diagnosis provenance DAG (populated when ScenarioConfig::obs
  /// .provenance is on and MARS is deployed).
  obs::ProvenanceGraph provenance;
};

struct ScenarioConfig {
  /// Fabric, resolved through net::TopologyRegistry by name. The default
  /// link rates model the paper's Mininet/BMv2 environment: software
  /// switches forward a few thousand pps, so links are Mbps-scale, with
  /// 2:1 edge-uplink oversubscription — the regime where a >1000 pps
  /// micro-burst exceeds line rate and a 1:9 ECMP skew pushes the loaded
  /// branch past capacity, as in Fig. 7.
  net::TopologySpec topology{.edge_gbps = 0.007, .core_gbps = 0.010};
  /// Per-port buffer in packets (Tofino-class buffers are far deeper than
  /// the BMv2 default; deep enough that process-rate faults queue rather
  /// than drop).
  std::uint32_t queue_capacity = 4096;
  workload::BackgroundConfig background;
  /// The fault schedule. The default is one process-rate fault after a
  /// healthy 3 s run-in (reservoir warm-up); an empty schedule is a
  /// healthy control run.
  faults::FaultSchedule faults = faults::FaultSchedule::single(
      faults::FaultKind::kProcessRateDecrease, 3 * sim::kSecond);
  sim::Time duration = 5 * sim::kSecond;  ///< total simulated time
  faults::InjectorConfig injector;
  std::uint64_t seed = 1;
  /// Telemetry systems to deploy, resolved through SystemRegistry by name
  /// and constructed in this order (MARS first keeps its pipeline the
  /// first packet observer, as the goldens were captured).
  std::vector<std::string> systems = {"mars", "spidermon", "intsight",
                                      "syndb"};
  MarsConfig mars;
  baselines::SpiderMonConfig spidermon;
  baselines::IntSightConfig intsight;
  baselines::SynDbConfig syndb;
  /// Optional observability bundle (nullptr = zero instrumentation
  /// overhead). Must outlive run_scenario.
  Observability* observability = nullptr;
  /// Sampler tick period when observability is attached.
  sim::Time sample_period = 100 * sim::kMillisecond;

  /// Ops-plane knobs (the spec's "obs" block). All of them are inert
  /// unless an Observability bundle is attached.
  struct ObsConfig {
    /// Admission floor for the structured event log.
    obs::LogLevel log_level = obs::LogLevel::kInfo;
    /// Per-(component, event) token-bucket rate limit, in events per
    /// simulated second, and its burst allowance.
    double log_rate_limit_per_s = 50.0;
    std::uint32_t log_rate_limit_burst = 16;
    /// Arm the flight recorder: ring capacity in events, and the session
    /// confidence below which a completed diagnosis dumps the ring.
    bool flight_recorder = false;
    std::size_t flight_capacity = 256;
    double flight_confidence_threshold = 0.8;
    /// Build the diagnosis provenance DAG (Observability::provenance).
    bool provenance = false;
  };
  ObsConfig obs;

  /// Sharded-simulation settings (the spec's "sim" block). shards == 0
  /// (the default) runs the classic single-queue simulator, bit-identical
  /// to earlier releases; shards >= 1 runs the conservative-lookahead
  /// sharded engine — its own golden universe (notification delivery
  /// becomes an explicit control-latency hop), pinned by its own
  /// fingerprints which must agree at every shard count. Sharded runs are
  /// restricted by validate_scenario: systems must be {"mars"}, the
  /// control channel must be perfect, no telemetry fault kinds, and for
  /// shards >= 2 the topology must offer enough partition components with
  /// positive boundary-link propagation.
  struct SimConfig {
    int shards = 0;
    /// Data-plane -> controller notification latency; also the floor of
    /// the conservative lookahead window.
    sim::Time control_latency = 1 * sim::kMillisecond;
  };
  SimConfig sim;

  /// Start of the first scheduled fault — the grading boundary. An empty
  /// schedule returns `duration` (nothing to grade after the run).
  [[nodiscard]] sim::Time first_fault_at() const {
    return faults.empty() ? duration : faults.events.front().at;
  }
};

/// Everything wrong with a config, as descriptive sentences; empty means
/// run_scenario will accept it.
[[nodiscard]] std::vector<std::string> validate_scenario(
    const ScenarioConfig& config);

/// One deployed system's graded trial outcome.
struct SystemOutcome {
  std::string system;  ///< registry name ("mars", "spidermon", ...)
  rca::CulpritList culprits;
  /// Rank of the FIRST ground truth in `culprits`, 1-based (the Table-1
  /// number for single-fault trials).
  std::optional<std::size_t> rank;
  /// Rank of every ground truth, index-aligned with ScenarioResult::truths.
  std::vector<std::optional<std::size_t>> ranks;
  std::uint64_t telemetry_bytes = 0;
  std::uint64_t diagnosis_bytes = 0;
  bool triggered = false;
  /// Evidence completeness behind the culprit list, in [0, 1]: 1 means no
  /// observed telemetry degradation; nullopt when the system never
  /// diagnosed (or does not model a degradable channel).
  std::optional<double> confidence;
  /// Fraction of diagnosis windows the top suspect appeared in (multi-
  /// epoch accumulation only — nullopt otherwise). Below 1 flags an
  /// intermittent culprit; confidence is already discounted by it.
  std::optional<double> presence;
  /// The trial's provenance DAG (points into the caller's Observability
  /// bundle; non-null only for systems that produce provenance — MARS —
  /// when ScenarioConfig::obs.provenance is on).
  const obs::ProvenanceGraph* provenance = nullptr;
};

struct ScenarioResult {
  /// Ground truth per successfully injected fault, schedule order.
  std::vector<faults::GroundTruth> truths;
  /// True when the schedule was non-empty and EVERY event found a viable
  /// target.
  bool fault_injected = false;
  /// One outcome per deployed system, in ScenarioConfig::systems order.
  std::vector<SystemOutcome> systems;
  net::NetworkStats net_stats;
  std::uint64_t packets_injected = 0;
  /// Total simulator events executed — a fingerprint of the event
  /// schedule. Identical seeds must produce identical values regardless of
  /// event-queue internals (determinism contract, see DESIGN.md).
  std::uint64_t events_executed = 0;

  /// First ground truth (single-fault convenience). Requires
  /// fault_injected.
  [[nodiscard]] const faults::GroundTruth& truth() const {
    return truths.at(0);
  }
  /// Outcome of the named system, or nullptr when it was not deployed.
  [[nodiscard]] const SystemOutcome* find(std::string_view system) const {
    for (const auto& outcome : systems) {
      if (outcome.system == system) return &outcome;
    }
    return nullptr;
  }
  /// Outcome of the named system; throws std::out_of_range if absent.
  [[nodiscard]] const SystemOutcome& outcome(std::string_view system) const {
    const SystemOutcome* found = find(system);
    if (found == nullptr) {
      throw std::out_of_range("system '" + std::string(system) +
                              "' was not deployed in this scenario");
    }
    return *found;
  }
};

/// Run one trial. Deterministic in config.seed. Throws
/// std::invalid_argument (with every validate_scenario sentence) on an
/// invalid config.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config);

/// Sensible defaults matching the paper's setup (§5.1–5.2): K=4 fat-tree,
/// ~200 pps background flows, 100 ms epochs, one `fault` injection at 3 s.
[[nodiscard]] ScenarioConfig default_scenario(faults::FaultKind fault,
                                              std::uint64_t seed);

}  // namespace mars
