#pragma once
// ScenarioRunner: one fault-injection trial, end to end (paper §5.2–5.4).
//
// Builds a fat-tree, starts background traffic, deploys MARS and the three
// baselines side by side on the same packets, warms the reservoirs,
// injects one fault, and returns every system's ranked culprit list plus
// overhead accounting and the ground truth. Trials are deterministic in
// their seed, and independent trials can run on separate threads (each
// owns its simulator and network).

#include <memory>
#include <optional>

#include "baselines/intsight.hpp"
#include "baselines/spidermon.hpp"
#include "baselines/syndb.hpp"
#include "faults/injector.hpp"
#include "mars/mars.hpp"
#include "metrics/ranking.hpp"
#include "net/fat_tree.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "workload/traffic_gen.hpp"

namespace mars {

/// Caller-owned observability bundle for one trial. When attached to a
/// ScenarioConfig, run_scenario scrapes the network and every deployed
/// system onto `registry`, runs a periodic Sampler into `series`, routes
/// the MARS pipeline/controller/RCA spans into `tracer`, and leaves a
/// final `snapshot` taken just before the scenario-scoped gauges are
/// removed (so the bundle stays safe to read after the trial).
///
/// Attaching observability schedules sampler events, so the trial's event
/// fingerprint differs from an unobserved run; the determinism contract
/// (same seed => same result) still holds for a fixed configuration.
struct Observability {
  obs::MetricsRegistry registry;
  obs::SpanTracer tracer;
  obs::SeriesStore series;
  /// Registry state at end-of-run (gauges still attached when taken).
  obs::MetricsSnapshot snapshot;
};

struct ScenarioConfig {
  int fat_tree_k = 4;
  /// Link rates in Gbps. The paper's Mininet environment runs BMv2
  /// software switches whose practical forwarding rate is a few thousand
  /// pps, so scenario links are Mbps-scale. Edge uplinks are 2:1
  /// oversubscribed (standard datacenter practice): that is the regime
  /// where a >1000 pps micro-burst exceeds line rate and a 1:9 ECMP skew
  /// pushes the loaded branch past capacity, as in Fig. 7.
  double edge_link_gbps = 0.007;
  double core_link_gbps = 0.010;
  /// Per-port buffer in packets (Tofino-class buffers are far deeper than
  /// the BMv2 default; deep enough that process-rate faults queue rather
  /// than drop).
  std::uint32_t queue_capacity = 4096;
  workload::BackgroundConfig background;
  /// Healthy run-in before the fault (reservoir warm-up).
  sim::Time fault_at = 3 * sim::kSecond;
  sim::Time duration = 5 * sim::kSecond;  ///< total simulated time
  faults::FaultKind fault = faults::FaultKind::kProcessRateDecrease;
  faults::InjectorConfig injector;
  std::uint64_t seed = 1;
  MarsConfig mars;
  baselines::SpiderMonConfig spidermon;
  baselines::IntSightConfig intsight;
  baselines::SynDbConfig syndb;
  /// Deploy the baselines alongside MARS (disable to speed up
  /// MARS-only experiments).
  bool with_baselines = true;
  /// Optional observability bundle (nullptr = zero instrumentation
  /// overhead). Must outlive run_scenario.
  Observability* observability = nullptr;
  /// Sampler tick period when observability is attached.
  sim::Time sample_period = 100 * sim::kMillisecond;
};

struct SystemOutcome {
  rca::CulpritList culprits;
  std::optional<std::size_t> rank;  ///< of the ground truth, 1-based
  std::uint64_t telemetry_bytes = 0;
  std::uint64_t diagnosis_bytes = 0;
  bool triggered = false;
};

struct ScenarioResult {
  faults::GroundTruth truth;
  bool fault_injected = false;
  SystemOutcome mars;
  SystemOutcome spidermon;
  SystemOutcome intsight;
  SystemOutcome syndb;
  net::NetworkStats net_stats;
  std::uint64_t packets_injected = 0;
  /// Total simulator events executed — a fingerprint of the event
  /// schedule. Identical seeds must produce identical values regardless of
  /// event-queue internals (determinism contract, see DESIGN.md).
  std::uint64_t events_executed = 0;
};

/// Run one trial. Deterministic in config.seed.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config);

/// Sensible defaults matching the paper's setup (§5.1–5.2): K=4 fat-tree,
/// ~200 pps background flows, 100 ms epochs.
[[nodiscard]] ScenarioConfig default_scenario(faults::FaultKind fault,
                                              std::uint64_t seed);

}  // namespace mars
