#include "mars/sweep.hpp"

#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace mars {

namespace {

SweepResult run_sweep_on(parallel::ThreadPool& pool,
                         const std::vector<SweepPoint>& points,
                         const SweepOptions& options) {
  // Validate every point before burning cycles on any of them: a sweep
  // that dies on point 900 of 1000 wasted an afternoon.
  for (const SweepPoint& point : points) {
    const auto errors = validate_scenario(point.config);
    if (!errors.empty()) {
      std::string joined;
      for (const auto& e : errors) {
        if (!joined.empty()) joined += "; ";
        joined += e;
      }
      throw std::invalid_argument("sweep point '" + point.label +
                                  "' invalid: " + joined);
    }
  }

  SweepResult sweep;
  sweep.trials.resize(points.size());
  parallel::parallel_for(pool, 0, points.size(), [&](std::size_t i) {
    SweepTrial& trial = sweep.trials[i];
    trial.label = points[i].label;
    // Each trial gets a private config copy: the caller's observability
    // pointer (unsafe to share across threads) is replaced by a per-trial
    // bundle or nothing.
    ScenarioConfig config = points[i].config;
    if (options.collect_observability) {
      trial.observability = std::make_unique<Observability>();
      config.observability = trial.observability.get();
    } else {
      config.observability = nullptr;
    }
    trial.result = run_scenario(config);
  });

  // Merge rankings and overheads per system, single-threaded for a
  // deterministic first-seen order.
  for (const SweepTrial& trial : sweep.trials) {
    for (const SystemOutcome& outcome : trial.result.systems) {
      SystemAggregate* aggregate = nullptr;
      for (auto& a : sweep.systems) {
        if (a.system == outcome.system) {
          aggregate = &a;
          break;
        }
      }
      if (aggregate == nullptr) {
        SystemAggregate fresh;
        fresh.system = outcome.system;
        sweep.systems.push_back(std::move(fresh));
        aggregate = &sweep.systems.back();
      }
      ++aggregate->deployments;
      if (!trial.result.truths.empty()) aggregate->stats.add(outcome.rank);
      aggregate->telemetry_bytes += outcome.telemetry_bytes;
      aggregate->diagnosis_bytes += outcome.diagnosis_bytes;
      if (outcome.triggered) ++aggregate->triggered;
    }
  }
  return sweep;
}

}  // namespace

SweepResult run_sweep(const std::vector<SweepPoint>& points,
                      const SweepOptions& options) {
  parallel::ThreadPool pool(options.threads);
  return run_sweep_on(pool, points, options);
}

SweepResult run_sweep(parallel::ThreadPool& pool,
                      const std::vector<SweepPoint>& points,
                      const SweepOptions& options) {
  return run_sweep_on(pool, points, options);
}

std::vector<SweepPoint> seed_sweep(const ScenarioConfig& base,
                                   std::uint64_t first_seed,
                                   std::size_t count,
                                   const std::string& label_prefix) {
  std::vector<SweepPoint> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SweepPoint point;
    point.config = base;
    point.config.seed = first_seed + i;
    point.label = label_prefix + "seed=" + std::to_string(point.config.seed);
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<SweepPoint> fault_grid(std::uint64_t first_seed,
                                   std::size_t seeds_per_fault) {
  constexpr faults::FaultKind kKinds[] = {
      faults::FaultKind::kMicroBurst,     faults::FaultKind::kEcmpImbalance,
      faults::FaultKind::kProcessRateDecrease, faults::FaultKind::kDelay,
      faults::FaultKind::kDrop};
  std::vector<SweepPoint> points;
  points.reserve(5 * seeds_per_fault);
  for (const faults::FaultKind kind : kKinds) {
    for (std::size_t i = 0; i < seeds_per_fault; ++i) {
      SweepPoint point;
      point.config = default_scenario(kind, first_seed + i);
      point.label = std::string(faults::short_name(kind)) +
                    "/seed=" + std::to_string(first_seed + i);
      points.push_back(std::move(point));
    }
  }
  return points;
}

}  // namespace mars
