#include "mars/scenario.hpp"

#include <algorithm>
#include <optional>

#include "obs/net_scrape.hpp"
#include "sim/simulator.hpp"

namespace mars {

ScenarioConfig default_scenario(faults::FaultKind fault, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.fault = fault;
  cfg.seed = seed;
  cfg.background.flows = 40;
  cfg.background.pps = 250.0;
  if (fault == faults::FaultKind::kEcmpImbalance) {
    // The skewed branch must exceed edge-uplink capacity for the
    // imbalance to surface within the one-second fault (Fig. 7b); that
    // needs more sourced traffic per edge than the other scenarios want.
    cfg.background.flows = 48;
    cfg.background.pps = 320.0;
  }
  cfg.mars.pipeline.epoch_period = 100 * sim::kMillisecond;
  cfg.mars.controller.poll_interval = 100 * sim::kMillisecond;
  cfg.mars.controller.reservoir.warmup = 12;
  cfg.mars.controller.reservoir.volume = 128;
  // Queueing latency in a loaded fat-tree is heavy-tailed; a pure m+3σ
  // threshold flags the ambient tail several times a second. The margin
  // floor keeps the dynamic threshold above everyday jitter so the
  // response window stays free for real faults.
  cfg.mars.controller.reservoir.relative_margin = 0.3;
  cfg.mars.controller.reservoir.sigma_multiplier = 3.0;
  cfg.mars.controller.response_window = 500 * sim::kMillisecond;
  // SpiderMon's static trigger, set the way an operator would for this
  // workload: above ambient queueing, below fault-grade congestion.
  cfg.spidermon.queue_delay_threshold = 30 * sim::kMillisecond;
  // ECMP imbalance draws from the stronger end of the paper's 1:4..1:10
  // range so the loaded branch reliably exceeds edge-uplink capacity.
  cfg.injector.imbalance_min = 8;
  return cfg;
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
  sim::Simulator simulator;
  auto ft = net::build_fat_tree({.k = config.fat_tree_k,
                                 .edge_agg_gbps = config.edge_link_gbps,
                                 .agg_core_gbps = config.core_link_gbps});
  net::Network network(simulator, ft.topology);
  for (net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
    network.node(sw).set_queue_capacity(config.queue_capacity);
  }

  Observability* obs = config.observability;

  // MARS.
  MarsConfig mars_config = config.mars;
  if (obs != nullptr) {
    mars_config.metrics = &obs->registry;
    mars_config.tracer = &obs->tracer;
  }
  MarsSystem mars_system(network, mars_config);

  // Baselines observe the same packets.
  std::unique_ptr<baselines::SpiderMon> spidermon;
  std::unique_ptr<baselines::IntSight> intsight;
  std::unique_ptr<baselines::SynDb> syndb;
  if (config.with_baselines) {
    spidermon = std::make_unique<baselines::SpiderMon>(
        ft.topology.switch_count(), config.spidermon);
    intsight = std::make_unique<baselines::IntSight>(config.intsight);
    syndb = std::make_unique<baselines::SynDb>(config.syndb);
    network.add_observer(*spidermon);
    network.add_observer(*intsight);
    network.add_observer(*syndb);
    if (obs != nullptr) {
      spidermon->register_metrics(obs->registry);
      intsight->register_metrics(obs->registry);
      syndb->register_metrics(obs->registry);
    }
  }

  workload::TrafficGenerator traffic(network, config.seed);
  traffic.add_background(config.background, ft.edge, config.fat_tree_k);

  faults::FaultInjector injector(network, traffic, config.seed ^ 0xFA17,
                                 config.injector);

  std::optional<obs::Sampler> sampler;
  if (obs != nullptr) {
    obs::scrape_network(network, obs->registry);
    sampler.emplace(simulator, obs->registry, obs->series,
                    obs::SamplerConfig{.period = config.sample_period,
                                       .until = config.duration});
    sampler->set_tracer(&obs->tracer);
    sampler->start();
  }

  mars_system.start();
  traffic.start();
  const auto truth = injector.inject(config.fault, config.fault_at);
  if (obs != nullptr && truth) {
    obs->tracer.instant("fault_injected", "scenario", config.fault_at,
                        {{"fault", faults::to_string(config.fault)},
                         {"truth", truth->describe()}});
  }

  {
    std::optional<obs::SpanTracer::WallSpan> run_span;
    if (obs != nullptr) {
      run_span.emplace(obs->tracer.wall_span(
          "simulator.run", "sim",
          {{"duration_s", sim::to_seconds(config.duration)}}));
    }
    simulator.run(config.duration);
    if (run_span) {
      run_span->arg({"events", simulator.events_executed()});
    }
  }

  if (obs != nullptr) {
    sampler->stop();
    obs->snapshot = obs->registry.snapshot();
    // Scenario-scoped gauges capture the network/systems on this stack;
    // drop them all so nothing dangles after return.
    obs->registry.remove_gauges("");
  }

  ScenarioResult result;
  result.fault_injected = truth.has_value();
  if (truth) result.truth = *truth;
  result.net_stats = network.stats();
  result.packets_injected = traffic.packets_injected();
  result.events_executed = simulator.events_executed();

  const metrics::MatchOptions mars_match{.require_cause = true};
  const metrics::MatchOptions location_match{.require_cause = false};

  // MARS outcome.
  result.mars.culprits = mars_system.culprits_for(config.fault_at);
  result.mars.triggered = !mars_system.diagnoses().empty();
  const auto mars_oh = mars_system.overheads();
  result.mars.telemetry_bytes = mars_oh.telemetry_bytes;
  result.mars.diagnosis_bytes = mars_oh.diagnosis_bytes;
  if (truth) {
    result.mars.rank =
        metrics::rank_of_truth(result.mars.culprits, *truth, mars_match);
  }

  if (config.with_baselines && truth) {
    result.spidermon.culprits = spidermon->diagnose();
    result.spidermon.triggered = spidermon->triggered();
    const auto sm_oh = spidermon->overheads();
    result.spidermon.telemetry_bytes = sm_oh.telemetry_bytes;
    result.spidermon.diagnosis_bytes = sm_oh.diagnosis_bytes;
    result.spidermon.rank = metrics::rank_of_truth(result.spidermon.culprits,
                                                   *truth, location_match);

    result.intsight.culprits = intsight->diagnose();
    result.intsight.triggered = intsight->triggered();
    const auto is_oh = intsight->overheads();
    result.intsight.telemetry_bytes = is_oh.telemetry_bytes;
    result.intsight.diagnosis_bytes = is_oh.diagnosis_bytes;
    result.intsight.rank = metrics::rank_of_truth(result.intsight.culprits,
                                                  *truth, location_match);

    // SyNDB is expert-aided: it is told the fault class AND queries the
    // incident window (Table 1 caveat — "we have to assume SyNDB knows
    // the root cause at first").
    const sim::Time incident_end =
        std::min(simulator.now(), config.fault_at + config.injector.duration);
    result.syndb.culprits =
        syndb->diagnose_with_hint(config.fault, incident_end);
    result.syndb.triggered = syndb->triggered();
    const auto sy_oh = syndb->overheads();
    result.syndb.telemetry_bytes = sy_oh.telemetry_bytes;
    result.syndb.diagnosis_bytes = sy_oh.diagnosis_bytes;
    result.syndb.rank = metrics::rank_of_truth(result.syndb.culprits, *truth,
                                               location_match);
  }
  return result;
}

}  // namespace mars
