#include "mars/scenario.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "control/path_registry_cache.hpp"
#include "mars/system_registry.hpp"
#include "net/partition.hpp"
#include "net/routing.hpp"
#include "obs/net_scrape.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace mars {

ScenarioConfig default_scenario(faults::FaultKind fault, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.faults = faults::FaultSchedule::single(fault, 3 * sim::kSecond);
  cfg.seed = seed;
  cfg.background.flows = 40;
  cfg.background.pps = 250.0;
  if (fault == faults::FaultKind::kEcmpImbalance) {
    // The skewed branch must exceed edge-uplink capacity for the
    // imbalance to surface within the one-second fault (Fig. 7b); that
    // needs more sourced traffic per edge than the other scenarios want.
    cfg.background.flows = 48;
    cfg.background.pps = 320.0;
  }
  cfg.mars.pipeline.epoch_period = 100 * sim::kMillisecond;
  cfg.mars.controller.poll_interval = 100 * sim::kMillisecond;
  cfg.mars.controller.reservoir.warmup = 12;
  cfg.mars.controller.reservoir.volume = 128;
  // Queueing latency in a loaded fat-tree is heavy-tailed; a pure m+3σ
  // threshold flags the ambient tail several times a second. The margin
  // floor keeps the dynamic threshold above everyday jitter so the
  // response window stays free for real faults.
  cfg.mars.controller.reservoir.relative_margin = 0.3;
  cfg.mars.controller.reservoir.sigma_multiplier = 3.0;
  cfg.mars.controller.response_window = 500 * sim::kMillisecond;
  // SpiderMon's static trigger, set the way an operator would for this
  // workload: above ambient queueing, below fault-grade congestion.
  cfg.spidermon.queue_delay_threshold = 30 * sim::kMillisecond;
  // ECMP imbalance draws from the stronger end of the paper's 1:4..1:10
  // range so the loaded branch reliably exceeds edge-uplink capacity.
  cfg.injector.imbalance_min = 8;
  return cfg;
}

std::vector<std::string> validate_scenario(const ScenarioConfig& config) {
  std::vector<std::string> errors =
      net::TopologyRegistry::instance().validate(config.topology);
  if (config.duration <= 0) {
    errors.push_back("scenario duration must be positive");
  }
  if (config.queue_capacity == 0) {
    errors.push_back("queue capacity must be nonzero (packets would be "
                     "dropped on arrival everywhere)");
  }
  if (config.background.flows < 0) {
    errors.push_back("background flow count must be non-negative (got " +
                     std::to_string(config.background.flows) + ")");
  }
  if (config.background.flows > 0 && config.background.pps <= 0.0) {
    errors.push_back("background flow rate must be positive (got " +
                     std::to_string(config.background.pps) + " pps)");
  }
  if (config.observability != nullptr && config.sample_period <= 0) {
    errors.push_back("sample period must be positive when observability "
                     "is attached");
  }
  if (config.obs.log_rate_limit_per_s <= 0.0) {
    errors.push_back("obs.log_rate_limit_per_s must be positive (got " +
                     std::to_string(config.obs.log_rate_limit_per_s) + ")");
  }
  if (config.obs.log_rate_limit_burst == 0) {
    errors.push_back("obs.log_rate_limit_burst must be nonzero (a zero "
                     "burst admits no events at all)");
  }
  if (config.obs.flight_capacity == 0) {
    errors.push_back("obs.flight_recorder.capacity must be nonzero");
  }
  if (config.obs.flight_confidence_threshold < 0.0 ||
      config.obs.flight_confidence_threshold > 1.0) {
    errors.push_back(
        "obs.flight_recorder.confidence_threshold must be in [0, 1] (got " +
        std::to_string(config.obs.flight_confidence_threshold) + ")");
  }
  const auto fault_errors = config.faults.validate(config.duration);
  errors.insert(errors.end(), fault_errors.begin(), fault_errors.end());
  const control::ChannelConfig& ch = config.mars.channel;
  const auto check_prob = [&errors](double value, const char* path) {
    if (value < 0.0 || value > 1.0) {
      errors.push_back(std::string(path) + " must be a probability in " +
                       "[0, 1] (got " + std::to_string(value) + ")");
    }
  };
  check_prob(ch.notification_loss, "mars.channel.notification_loss");
  check_prob(ch.notification_delay_prob,
             "mars.channel.notification_delay_prob");
  check_prob(ch.read_failure, "mars.channel.read_failure");
  check_prob(ch.record_loss, "mars.channel.record_loss");
  check_prob(ch.record_corruption, "mars.channel.record_corruption");
  if (ch.notification_delay_min < 0) {
    errors.push_back(
        "mars.channel.notification_delay_min must be non-negative");
  }
  if (ch.notification_delay_max < ch.notification_delay_min) {
    errors.push_back(
        "mars.channel.notification_delay_max must be >= "
        "notification_delay_min");
  }
  if (config.mars.controller.read_deadline < 0) {
    errors.push_back("mars.controller.read_deadline must be non-negative");
  }
  if (config.mars.controller.retry_backoff < 0) {
    errors.push_back("mars.controller.retry_backoff must be non-negative");
  }
  if (config.mars.controller.max_read_retries > 16) {
    errors.push_back(
        "mars.controller.max_read_retries must be at most 16 (got " +
        std::to_string(config.mars.controller.max_read_retries) + ")");
  }
  if (config.mars.rca.mining.threads < 1 ||
      config.mars.rca.mining.threads > 64) {
    errors.push_back(
        "mars.rca.mining.threads must be in [1, 64] (got " +
        std::to_string(config.mars.rca.mining.threads) + ")");
  }
  if (config.mars.rca.accumulator.half_life <= 0) {
    errors.push_back("mars.rca.accumulator.half_life_s must be positive");
  }
  if (config.mars.rca.accumulator.max_windows == 0) {
    errors.push_back("mars.rca.accumulator.max_windows must be nonzero "
                     "(zero windows can accumulate no evidence)");
  }
  if (config.injector.manifestation_window <= 0) {
    errors.push_back("injector manifestation_window must be positive");
  }
  const telemetry::BackendConfig& be = config.mars.pipeline.backend;
  if (config.mars.pipeline.ring_capacity == 0) {
    errors.push_back("telemetry.ring_capacity must be nonzero (an empty "
                     "export store can never surface evidence)");
  }
  if (be.int_md.sample_every == 0) {
    errors.push_back("telemetry.int_md.sample_every must be at least 1 "
                     "(0 samples nothing)");
  }
  if (be.int_md.max_hops == 0) {
    errors.push_back("telemetry.int_md.max_hops must be at least 1");
  }
  if (be.histogram.buckets < 8 || be.histogram.buckets > 4096) {
    errors.push_back("telemetry.histogram.buckets must be in [8, 4096] "
                     "(got " + std::to_string(be.histogram.buckets) + ")");
  }
  if (be.histogram.sub_bucket_bits > 8) {
    errors.push_back(
        "telemetry.histogram.sub_bucket_bits must be at most 8 (got " +
        std::to_string(be.histogram.sub_bucket_bits) + ")");
  }
  if (be.histogram.marker_bytes == 0 || be.histogram.marker_bytes > 64) {
    errors.push_back("telemetry.histogram.marker_bytes must be in [1, 64] "
                     "(got " + std::to_string(be.histogram.marker_bytes) +
                     ")");
  }
  if (be.histogram.tail_latency <= 0) {
    errors.push_back("telemetry.histogram.tail_latency_ms must be positive");
  }
  check_prob(be.histogram.trigger_enter,
             "telemetry.histogram.trigger_enter");
  check_prob(be.histogram.trigger_exit, "telemetry.histogram.trigger_exit");
  if (be.histogram.trigger_exit > be.histogram.trigger_enter) {
    errors.push_back(
        "telemetry.histogram.trigger_exit must be <= trigger_enter "
        "(hysteresis re-arms below the firing level; got exit " +
        std::to_string(be.histogram.trigger_exit) + " > enter " +
        std::to_string(be.histogram.trigger_enter) + ")");
  }
  for (std::size_t i = 0; i < config.systems.size(); ++i) {
    const std::string& name = config.systems[i];
    if (!SystemRegistry::instance().contains(name)) {
      errors.push_back("unknown telemetry system '" + name + "' (known: " +
                       SystemRegistry::instance().known_names() + ")");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (config.systems[j] == name) {
        errors.push_back("telemetry system '" + name +
                         "' is listed more than once");
        break;
      }
    }
  }
  if (config.sim.shards < 0 || config.sim.shards > 64) {
    errors.push_back("sim.shards must be in [1, 64] (got " +
                     std::to_string(config.sim.shards) + ")");
  } else if (config.sim.shards >= 1) {
    if (config.sim.control_latency <= 0) {
      errors.push_back("sim.control_latency must be positive (got " +
                       std::to_string(config.sim.control_latency) + " ns)");
    }
    for (const std::string& name : config.systems) {
      if (name != "mars") {
        errors.push_back("sharded simulation (sim.shards >= 1) supports "
                         "only the 'mars' telemetry system (got '" +
                         name + "')");
      }
    }
    const bool channel_perfect =
        ch.notification_loss == 0.0 && ch.notification_delay_prob == 0.0 &&
        ch.read_failure == 0.0 && ch.record_loss == 0.0 &&
        ch.record_corruption == 0.0;
    if (!channel_perfect) {
      errors.push_back("sharded simulation requires a perfect control "
                       "channel (mars.channel degradation knobs must all "
                       "be zero)");
    }
    if (be.kind != telemetry::BackendKind::kPostcard) {
      errors.push_back(
          std::string("sharded simulation supports only the 'postcard' "
                      "telemetry backend (got '") +
          telemetry::to_string(be.kind) +
          "'; int-md and histogram keep cross-switch state that shard "
          "threads may not share)");
    }
    for (const auto& event : config.faults.events) {
      if (faults::is_telemetry_fault(event.kind)) {
        errors.push_back(std::string("telemetry fault '") +
                         faults::to_string(event.kind) +
                         "' needs the degraded control channel, which "
                         "sharded simulation does not model");
        break;
      }
    }
    if (config.sim.shards >= 2 &&
        net::TopologyRegistry::instance().validate(config.topology).empty()) {
      const net::BuiltFabric fabric =
          net::TopologyRegistry::instance().build(config.topology);
      const int capacity = net::partition_capacity(fabric.topology);
      if (config.sim.shards > capacity) {
        errors.push_back(
            "sim.shards exceeds the topology's partition capacity: no "
            "partition boundary supports " +
            std::to_string(config.sim.shards) + " shards (topology '" +
            config.topology.name + "' splits into " +
            std::to_string(capacity) + " components)");
      } else {
        const net::Partition partition =
            net::partition_topology(fabric.topology, config.sim.shards);
        if (!partition.boundary_links.empty() &&
            partition.min_boundary_propagation < 1) {
          errors.push_back(
              "sharded simulation requires positive propagation delay on "
              "shard-boundary links (topology '" + config.topology.name +
              "' has a zero-delay boundary link)");
        }
      }
    }
  }
  const telemetry::PathIdConfig& pid = config.mars.pipeline.path_id;
  if (pid.width_bits < 1 || pid.width_bits > 32) {
    errors.push_back("telemetry.path_id.width_bits must be in [1, 32] (got " +
                     std::to_string(pid.width_bits) + ")");
  } else if (std::find(config.systems.begin(), config.systems.end(),
                       "mars") != config.systems.end() &&
             net::TopologyRegistry::instance()
                 .validate(config.topology)
                 .empty()) {
    // An unresolved PathID collision decompresses diagnosis reports to the
    // wrong switch sequence, silently corrupting localization — so a
    // registry that cannot resolve every collision is a configuration
    // error, not a runtime condition. The build is cached by (topology
    // structure, PathIdConfig); deployment reuses this exact registry.
    const net::BuiltFabric fabric =
        net::TopologyRegistry::instance().build(config.topology);
    const net::RoutingTable routing(fabric.topology);
    const auto registry = control::PathRegistryCache::instance().get_or_build(
        fabric.topology, routing, pid);
    if (!registry->conflict_free()) {
      const control::PathAuditReport& audit = registry->audit();
      errors.push_back(
          "PathID registry for topology '" + config.topology.name +
          "' is not conflict-free at " +
          std::string(telemetry::hash_name(pid.hash)) + "/" +
          std::to_string(pid.width_bits) + " bits: " +
          std::to_string(audit.residual_collisions) + " of " +
          std::to_string(audit.path_count) + " paths remain ambiguous" +
          (audit.pigeonhole_infeasible
               ? std::string(" (pigeonhole: more paths than PathID values)")
               : " after " + std::to_string(audit.rounds) +
                     " resolution rounds") +
          " — widen telemetry.path_id (e.g. crc32 / 32 bits) or shrink "
          "the topology");
    }
  }
  return errors;
}

namespace {

void throw_if_invalid(const ScenarioConfig& config) {
  if (const auto errors = validate_scenario(config); !errors.empty()) {
    std::string joined;
    for (const auto& e : errors) {
      if (!joined.empty()) joined += "; ";
      joined += e;
    }
    throw std::invalid_argument("scenario config invalid: " + joined);
  }
}

/// Reset + configure the bundle's ops plane from the "obs" block. Called
/// before any system deploys so every component sees the final admission
/// settings.
void configure_obs(const ScenarioConfig& config, Observability* obs) {
  if (obs == nullptr) return;
  obs::EventLogConfig log_cfg;
  log_cfg.min_level = config.obs.log_level;
  log_cfg.rate_limit_per_s = config.obs.log_rate_limit_per_s;
  log_cfg.rate_limit_burst = config.obs.log_rate_limit_burst;
  obs->log.configure(log_cfg);
  obs->provenance.clear();
  obs::FlightRecorderConfig rec_cfg;
  rec_cfg.capacity = config.obs.flight_capacity;
  rec_cfg.confidence_threshold = config.obs.flight_confidence_threshold;
  obs->recorder.configure(rec_cfg);
  // The recorder taps the log BEFORE level/rate admission: the black box
  // keeps full verbosity even when the exported log is quiet.
  obs->log.set_recorder(config.obs.flight_recorder ? &obs->recorder
                                                   : nullptr);
}

/// Post-grading provenance attribution: annotate every suspect node that
/// survived into the final ranked list with its final rank, and add
/// fault -> suspect "manifested_as" edges for culprits that name an
/// injected ground truth (same matcher the Table-1 grading uses).
void attribute_faults(obs::ProvenanceGraph& graph,
                      const ScenarioResult& result,
                      const std::vector<std::string>& fault_nodes) {
  // Gray faults: fault nodes gain their post-run manifestation accounting
  // (the probe counts only exist once the simulation finished).
  for (std::size_t t = 0; t < result.truths.size() && t < fault_nodes.size();
       ++t) {
    const faults::GroundTruth& truth = result.truths[t];
    if (!faults::is_gray_fault(truth.kind) || truth.windows_total == 0) {
      continue;
    }
    graph.annotate(fault_nodes[t],
                   {"manifestation", truth.manifestation_ratio});
    graph.annotate(fault_nodes[t],
                   {"windows_active", std::uint64_t{truth.windows_active}});
    graph.annotate(fault_nodes[t],
                   {"windows_total", std::uint64_t{truth.windows_total}});
  }
  const SystemOutcome* mars = result.find("mars");
  if (mars == nullptr) return;
  using NodeKind = obs::ProvenanceGraph::NodeKind;
  for (std::size_t c = 0; c < mars->culprits.size(); ++c) {
    const auto ids = graph.find_nodes(NodeKind::kSuspect, "key",
                                      rca::provenance_key(mars->culprits[c]));
    for (const std::string& id : ids) {
      graph.annotate(id, {"final_rank", std::uint64_t{c + 1}});
    }
  }
  for (std::size_t t = 0; t < result.truths.size() && t < fault_nodes.size();
       ++t) {
    for (const auto& culprit : mars->culprits) {
      if (!metrics::culprit_matches(culprit, result.truths[t],
                                    {.require_cause = true})) {
        continue;
      }
      for (const std::string& id : graph.find_nodes(
               NodeKind::kSuspect, "key", rca::provenance_key(culprit))) {
        graph.add_edge(fault_nodes[t], id, "manifested_as");
      }
    }
  }
}

/// Shared result assembly: grading queries, per-system outcomes, ground
/// truths — identical for the legacy and sharded engines.
ScenarioResult assemble_result(
    const ScenarioConfig& config,
    std::vector<std::unique_ptr<systems::TelemetrySystem>>& deployed,
    std::vector<faults::GroundTruth>&& truths, net::NetworkStats net_stats,
    std::uint64_t packets_injected, std::uint64_t events_executed,
    sim::Time now) {
  ScenarioResult result;
  result.truths = std::move(truths);
  result.fault_injected =
      !config.faults.empty() && result.truths.size() == config.faults.size();
  result.net_stats = net_stats;
  result.packets_injected = packets_injected;
  result.events_executed = events_executed;

  // One query for every system. SyNDB reads the expert hint (the Table-1
  // caveat — "we have to assume SyNDB knows the root cause at first"):
  // the FIRST scheduled fault's class and incident window.
  systems::DiagnosisQuery query;
  query.fault_start = config.first_fault_at();
  query.now = now;
  if (!config.faults.empty()) {
    const faults::FaultEvent& first = config.faults.events.front();
    query.hint = first.kind;
    const sim::Time fault_len =
        first.duration > 0 ? first.duration : config.injector.duration;
    query.incident_end = std::min(now, first.at + fault_len);
  }

  result.systems.reserve(deployed.size());
  for (std::size_t i = 0; i < deployed.size(); ++i) {
    systems::TelemetrySystem& system = *deployed[i];
    SystemOutcome outcome;
    outcome.system = config.systems[i];
    outcome.culprits = system.diagnose(query);
    outcome.triggered = system.triggered();
    outcome.confidence = system.confidence();
    outcome.presence = system.presence();
    const auto oh = system.overheads();
    outcome.telemetry_bytes = oh.telemetry_bytes;
    outcome.diagnosis_bytes = oh.diagnosis_bytes;
    const metrics::MatchOptions match = system.match_options();
    outcome.ranks.reserve(result.truths.size());
    for (const auto& truth : result.truths) {
      outcome.ranks.push_back(
          metrics::rank_of_truth(outcome.culprits, truth, match));
    }
    if (!outcome.ranks.empty()) outcome.rank = outcome.ranks.front();
    if (outcome.system == "mars" && config.observability != nullptr &&
        config.obs.provenance) {
      outcome.provenance = &config.observability->provenance;
    }
    result.systems.push_back(std::move(outcome));
  }
  return result;
}

/// The sharded engine: partition the fabric, one event queue per shard on
/// a thread pool, conservative-lookahead windows, control plane on the
/// global simulator. Validation has already restricted the config to
/// what this engine models (MARS only, perfect channel).
ScenarioResult run_sharded_scenario(const ScenarioConfig& config) {
  net::BuiltFabric fabric =
      net::TopologyRegistry::instance().build(config.topology);
  const net::Partition partition =
      net::partition_topology(fabric.topology, config.sim.shards);

  sim::ShardedConfig shard_config;
  shard_config.shards = config.sim.shards;
  shard_config.control_latency = config.sim.control_latency;
  // Lookahead: the fastest path between shards — the slimmest boundary
  // link, capped by the control latency (post_control requires
  // control_latency >= lookahead).
  shard_config.lookahead = config.sim.control_latency;
  if (!partition.boundary_links.empty()) {
    shard_config.lookahead = std::min(shard_config.lookahead,
                                      partition.min_boundary_propagation);
  }

  parallel::ThreadPool pool(static_cast<std::size_t>(config.sim.shards));
  sim::ShardedSimulator ssim(pool, shard_config);
  net::Network network(ssim, fabric.topology, partition);
  for (net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
    network.node(sw).set_queue_capacity(config.queue_capacity);
  }

  Observability* obs = config.observability;
  configure_obs(config, obs);

  std::vector<std::unique_ptr<systems::TelemetrySystem>> deployed;
  deployed.reserve(config.systems.size());
  for (const std::string& name : config.systems) {
    deployed.push_back(
        SystemRegistry::instance().create(name, network, config, obs));
  }

  workload::TrafficGenerator traffic(network, config.seed);
  traffic.add_background(config.background, fabric.edge, fabric.pods);

  faults::FaultInjector injector(network, traffic, config.seed ^ 0xFA17,
                                 config.injector);
  if (obs != nullptr) {
    injector.set_metrics(obs->registry);
    injector.set_event_log(&obs->log);
  }

  std::optional<obs::Sampler> sampler;
  if (obs != nullptr) {
    obs::scrape_network(network, obs->registry);
    obs->registry.gauge("sim.shards", [&ssim] {
      return static_cast<double>(ssim.shard_count());
    });
    obs->registry.gauge("sim.windows", [&ssim] {
      return static_cast<double>(ssim.sync_stats().windows);
    });
    obs->registry.gauge("sim.global_rounds", [&ssim] {
      return static_cast<double>(ssim.sync_stats().global_rounds);
    });
    obs->registry.gauge("sim.lookahead_stalls", [&ssim] {
      return static_cast<double>(ssim.sync_stats().lookahead_stalls);
    });
    obs->registry.gauge("sim.windows_capped_by_global", [&ssim] {
      return static_cast<double>(ssim.sync_stats().windows_capped_by_global);
    });
    obs->registry.gauge("sim.windows_to_end", [&ssim] {
      return static_cast<double>(ssim.sync_stats().windows_to_end);
    });
    obs->registry.gauge("sim.mailbox.drains", [&network] {
      return static_cast<double>(network.mailbox_stats().drains);
    });
    obs->registry.gauge("sim.mailbox.mail", [&network] {
      return static_cast<double>(network.mailbox_stats().total_mail);
    });
    obs->registry.gauge("sim.mailbox.max_batch", [&network] {
      return static_cast<double>(network.mailbox_stats().max_batch);
    });
    for (int i = 0; i < ssim.shard_count(); ++i) {
      const std::string sp = "sim.shard." + std::to_string(i) + ".";
      obs->registry.gauge(sp + "events", [&ssim, i] {
        return static_cast<double>(ssim.shard(i).events_executed());
      });
      obs->registry.gauge(sp + "busy_windows", [&ssim, i] {
        return static_cast<double>(ssim.shard_stats(i).busy_windows);
      });
      obs->registry.gauge(sp + "busy_fraction", [&ssim, i] {
        return ssim.shard_stats(i).busy_fraction();
      });
      obs->registry.gauge(sp + "max_window_events", [&ssim, i] {
        return static_cast<double>(ssim.shard_stats(i).max_window_events);
      });
    }
    // Sampler scrapes run as global events: between windows, with every
    // shard quiescent, so the per-shard gauges read stable state.
    sampler.emplace(ssim.global(), obs->registry, obs->series,
                    obs::SamplerConfig{.period = config.sample_period,
                                       .until = config.duration});
    sampler->set_tracer(&obs->tracer);
    if (config.obs.flight_recorder) {
      sampler->set_flight_recorder(&obs->recorder);
    }
    sampler->start();
  }

  if (obs != nullptr) {
    obs->log.log(obs::LogLevel::kInfo, 0, "scenario", "start",
                 {{"topology", config.topology.name},
                  {"seed", config.seed},
                  {"duration_s", sim::to_seconds(config.duration)},
                  {"systems", std::uint64_t{deployed.size()}}});
  }
  for (auto& system : deployed) system->start();
  traffic.start();

  const auto injected = injector.apply(config.faults);
  std::vector<faults::GroundTruth> truths;
  std::vector<std::string> fault_nodes;  // parallel to truths
  for (std::size_t i = 0; i < injected.size(); ++i) {
    if (!injected[i]) continue;
    truths.push_back(*injected[i]);
    if (obs != nullptr) {
      obs::SpanArgs args{
          {"fault", faults::to_string(config.faults.events[i].kind)},
          {"truth", injected[i]->describe()}};
      if (config.obs.provenance) {
        // Ground-truth anchor: attribute_faults joins the graded culprits
        // back to this node after the run.
        fault_nodes.push_back(obs->provenance.add_node(
            obs::ProvenanceGraph::NodeKind::kFault,
            {{"kind", faults::to_string(config.faults.events[i].kind)},
             {"truth", injected[i]->describe()},
             {"ts_s", sim::to_seconds(config.faults.events[i].at)}}));
        args.push_back({"prov", fault_nodes.back()});
      }
      obs->tracer.instant("fault_injected", "scenario",
                          config.faults.events[i].at, args);
    }
  }

  {
    std::optional<obs::SpanTracer::WallSpan> run_span;
    if (obs != nullptr) {
      run_span.emplace(obs->tracer.wall_span(
          "simulator.run", "sim",
          {{"duration_s", sim::to_seconds(config.duration)},
           {"shards", static_cast<std::uint64_t>(config.sim.shards)}}));
    }
    ssim.run(config.duration);
    if (run_span) {
      run_span->arg({"events", ssim.events_executed()});
    }
  }
  // Gray manifestation accounting is filled in by the injector's probes
  // during the run; re-read the final ground truths (same order).
  truths = injector.injected();

  if (obs != nullptr) {
    for (int i = 0; i < ssim.shard_count(); ++i) {
      obs->tracer.complete(
          "sim.shard", "sim", 0, config.duration,
          {{"shard", static_cast<std::uint64_t>(i)},
           {"events", ssim.shard(i).events_executed()},
           {"windows", ssim.shard_stats(i).windows},
           {"busy_windows", ssim.shard_stats(i).busy_windows},
           {"max_window_events", ssim.shard_stats(i).max_window_events}});
    }
    sampler->stop();
    obs->snapshot = obs->registry.snapshot();
    obs->registry.remove_gauges("");
  }

  ScenarioResult result = assemble_result(
      config, deployed, std::move(truths), network.stats(),
      traffic.packets_injected(), ssim.events_executed(),
      ssim.global().now());
  if (obs != nullptr) {
    obs->log.log(obs::LogLevel::kInfo, ssim.global().now(), "scenario",
                 "complete",
                 {{"events", result.events_executed},
                  {"packets", result.packets_injected}});
    if (config.obs.provenance) {
      attribute_faults(obs->provenance, result, fault_nodes);
    }
  }
  return result;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config) {
  throw_if_invalid(config);
  if (config.sim.shards >= 1) return run_sharded_scenario(config);

  sim::Simulator simulator;
  net::BuiltFabric fabric =
      net::TopologyRegistry::instance().build(config.topology);
  net::Network network(simulator, fabric.topology);
  for (net::SwitchId sw = 0; sw < network.switch_count(); ++sw) {
    network.node(sw).set_queue_capacity(config.queue_capacity);
  }

  Observability* obs = config.observability;
  configure_obs(config, obs);

  // Deploy the named systems in config order onto the same packets. Order
  // matters for observer callbacks (MARS's pipeline first, as the golden
  // fingerprints were captured) — each factory attaches its observers.
  std::vector<std::unique_ptr<systems::TelemetrySystem>> deployed;
  deployed.reserve(config.systems.size());
  for (const std::string& name : config.systems) {
    deployed.push_back(
        SystemRegistry::instance().create(name, network, config, obs));
  }

  workload::TrafficGenerator traffic(network, config.seed);
  traffic.add_background(config.background, fabric.edge, fabric.pods);

  faults::FaultInjector injector(network, traffic, config.seed ^ 0xFA17,
                                 config.injector);
  // Telemetry faults land on the first deployed system that models a
  // degradable channel (MARS); without one they are skipped visibly.
  for (auto& system : deployed) {
    if (auto* channel = system->control_channel(); channel != nullptr) {
      injector.attach_channel(channel);
      break;
    }
  }
  if (obs != nullptr) {
    injector.set_metrics(obs->registry);
    injector.set_event_log(&obs->log);
  }

  std::optional<obs::Sampler> sampler;
  if (obs != nullptr) {
    obs::scrape_network(network, obs->registry);
    sampler.emplace(simulator, obs->registry, obs->series,
                    obs::SamplerConfig{.period = config.sample_period,
                                       .until = config.duration});
    sampler->set_tracer(&obs->tracer);
    if (config.obs.flight_recorder) {
      sampler->set_flight_recorder(&obs->recorder);
    }
    sampler->start();
  }

  if (obs != nullptr) {
    obs->log.log(obs::LogLevel::kInfo, 0, "scenario", "start",
                 {{"topology", config.topology.name},
                  {"seed", config.seed},
                  {"duration_s", sim::to_seconds(config.duration)},
                  {"systems", std::uint64_t{deployed.size()}}});
  }
  for (auto& system : deployed) system->start();
  traffic.start();

  const auto injected = injector.apply(config.faults);
  std::vector<faults::GroundTruth> truths;
  std::vector<std::string> fault_nodes;  // parallel to truths
  for (std::size_t i = 0; i < injected.size(); ++i) {
    if (!injected[i]) continue;
    truths.push_back(*injected[i]);
    if (obs != nullptr) {
      obs::SpanArgs args{
          {"fault", faults::to_string(config.faults.events[i].kind)},
          {"truth", injected[i]->describe()}};
      if (config.obs.provenance) {
        // Ground-truth anchor: attribute_faults joins the graded culprits
        // back to this node after the run.
        fault_nodes.push_back(obs->provenance.add_node(
            obs::ProvenanceGraph::NodeKind::kFault,
            {{"kind", faults::to_string(config.faults.events[i].kind)},
             {"truth", injected[i]->describe()},
             {"ts_s", sim::to_seconds(config.faults.events[i].at)}}));
        args.push_back({"prov", fault_nodes.back()});
      }
      obs->tracer.instant("fault_injected", "scenario",
                          config.faults.events[i].at, args);
    }
  }

  {
    std::optional<obs::SpanTracer::WallSpan> run_span;
    if (obs != nullptr) {
      run_span.emplace(obs->tracer.wall_span(
          "simulator.run", "sim",
          {{"duration_s", sim::to_seconds(config.duration)}}));
    }
    simulator.run(config.duration);
    if (run_span) {
      run_span->arg({"events", simulator.events_executed()});
    }
  }
  // Gray manifestation accounting is filled in by the injector's probes
  // during the run; re-read the final ground truths (same order).
  truths = injector.injected();

  if (obs != nullptr) {
    sampler->stop();
    obs->snapshot = obs->registry.snapshot();
    // Scenario-scoped gauges capture the network/systems on this stack;
    // drop them all so nothing dangles after return.
    obs->registry.remove_gauges("");
  }

  ScenarioResult result = assemble_result(
      config, deployed, std::move(truths), network.stats(),
      traffic.packets_injected(), simulator.events_executed(),
      simulator.now());
  if (obs != nullptr) {
    obs->log.log(obs::LogLevel::kInfo, simulator.now(), "scenario",
                 "complete",
                 {{"events", result.events_executed},
                  {"packets", result.packets_injected}});
    if (config.obs.provenance) {
      attribute_faults(obs->provenance, result, fault_nodes);
    }
  }
  return result;
}

}  // namespace mars
