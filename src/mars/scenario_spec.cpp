#include "mars/scenario_spec.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json_reader.hpp"
#include "obs/json_writer.hpp"
#include "telemetry/backend.hpp"
#include "telemetry/path_id.hpp"

namespace mars {

namespace {

sim::Time seconds_to_time(double s) {
  return static_cast<sim::Time>(
      std::llround(s * static_cast<double>(sim::kSecond)));
}

[[noreturn]] void fail(const std::string& path, const std::string& message) {
  throw std::invalid_argument(path + ": " + message);
}

double as_number(const obs::JsonValue& v, const std::string& path) {
  if (!v.is_number()) fail(path, std::string("expected a number, got ") +
                                     v.kind_name());
  return v.as_number();
}

int as_count(const obs::JsonValue& v, const std::string& path) {
  if (!v.is_number()) fail(path, std::string("expected an integer, got ") +
                                     v.kind_name());
  const double d = v.as_number();
  if (d != std::floor(d)) fail(path, "expected an integer");
  return static_cast<int>(d);
}

std::uint64_t as_uint(const obs::JsonValue& v, const std::string& path) {
  if (!v.is_number()) fail(path, std::string("expected an unsigned integer, "
                                             "got ") +
                                     v.kind_name());
  try {
    return v.as_uint();
  } catch (const std::exception&) {
    fail(path, "expected a non-negative integer");
  }
}

const std::string& as_string(const obs::JsonValue& v,
                             const std::string& path) {
  if (!v.is_string()) fail(path, std::string("expected a string, got ") +
                                     v.kind_name());
  return v.as_string();
}

bool as_bool(const obs::JsonValue& v, const std::string& path) {
  if (!v.is_bool()) fail(path, std::string("expected a boolean, got ") +
                                   v.kind_name());
  return v.as_bool();
}

void reject_unknown_keys(const obs::JsonValue& object,
                         std::initializer_list<std::string_view> known,
                         const std::string& path) {
  for (const auto& [key, value] : object.members()) {
    bool ok = false;
    for (const std::string_view k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      std::string names;
      for (const std::string_view k : known) {
        if (!names.empty()) names += ", ";
        names += k;
      }
      fail(path, "unknown key '" + key + "' (known: " + names + ")");
    }
  }
}

ScenarioSpec::Fault parse_fault(const obs::JsonValue& v,
                                const std::string& path) {
  if (!v.is_object()) fail(path, "expected a fault object");
  reject_unknown_keys(
      v,
      {"kind", "at_s", "duration_s", "target_switch", "target_port", "gray"},
      path);
  ScenarioSpec::Fault fault;
  if (const auto* kind = v.find("kind")) {
    fault.kind = as_string(*kind, path + ".kind");
  }
  if (const auto* at = v.find("at_s")) {
    fault.at_s = as_number(*at, path + ".at_s");
  }
  if (const auto* d = v.find("duration_s")) {
    fault.duration_s = as_number(*d, path + ".duration_s");
  }
  if (const auto* sw = v.find("target_switch")) {
    fault.target_switch =
        static_cast<net::SwitchId>(as_uint(*sw, path + ".target_switch"));
  }
  if (const auto* port = v.find("target_port")) {
    fault.target_port =
        static_cast<net::PortId>(as_uint(*port, path + ".target_port"));
  }
  if (const auto* gray = v.find("gray")) {
    const std::string gpath = path + ".gray";
    if (!gray->is_object()) fail(gpath, "expected an object");
    reject_unknown_keys(*gray,
                        {"mean_up_ms", "mean_down_ms", "fanout", "loss_fwd",
                         "loss_rev", "drain_us_per_pkt", "gate_depth",
                         "gate_delay_ms"},
                        gpath);
    if (const auto* g = gray->find("mean_up_ms")) {
      fault.gray.mean_up_ms = as_number(*g, gpath + ".mean_up_ms");
    }
    if (const auto* g = gray->find("mean_down_ms")) {
      fault.gray.mean_down_ms = as_number(*g, gpath + ".mean_down_ms");
    }
    if (const auto* g = gray->find("fanout")) {
      fault.gray.fanout = as_count(*g, gpath + ".fanout");
    }
    if (const auto* g = gray->find("loss_fwd")) {
      fault.gray.loss_fwd = as_number(*g, gpath + ".loss_fwd");
    }
    if (const auto* g = gray->find("loss_rev")) {
      fault.gray.loss_rev = as_number(*g, gpath + ".loss_rev");
    }
    if (const auto* g = gray->find("drain_us_per_pkt")) {
      fault.gray.drain_us_per_pkt =
          as_number(*g, gpath + ".drain_us_per_pkt");
    }
    if (const auto* g = gray->find("gate_depth")) {
      fault.gray.gate_depth =
          static_cast<std::uint32_t>(as_uint(*g, gpath + ".gate_depth"));
    }
    if (const auto* g = gray->find("gate_delay_ms")) {
      fault.gray.gate_delay_ms = as_number(*g, gpath + ".gate_delay_ms");
    }
  }
  return fault;
}

}  // namespace

ScenarioConfig ScenarioSpec::to_config() const {
  faults::FaultKind first_kind = faults::FaultKind::kProcessRateDecrease;
  if (!faults.empty()) {
    const auto kind = faults::kind_from_name(faults.front().kind);
    if (!kind) {
      throw std::invalid_argument(
          "unknown fault kind '" + faults.front().kind +
          "' (known: " + faults::known_kind_names() + ")");
    }
    first_kind = *kind;
  }
  // Start from the tuned paper defaults for this fault class, then apply
  // only the fields the spec sets — a minimal spec IS default_scenario.
  ScenarioConfig cfg = default_scenario(first_kind, seed);
  cfg.topology.name = topology;
  if (k) cfg.topology.k = *k;
  if (leaves) cfg.topology.leaves = *leaves;
  if (spines) cfg.topology.spines = *spines;
  if (edge_gbps) cfg.topology.edge_gbps = *edge_gbps;
  if (core_gbps) cfg.topology.core_gbps = *core_gbps;
  if (propagation_us) {
    cfg.topology.propagation = static_cast<sim::Time>(
        std::llround(*propagation_us * 1e3));
  }
  if (queue_capacity) cfg.queue_capacity = *queue_capacity;
  if (flows) cfg.background.flows = *flows;
  if (pps) cfg.background.pps = *pps;
  if (inter_pod_fraction) {
    cfg.background.inter_pod_fraction = *inter_pod_fraction;
  }
  if (duration_s) cfg.duration = seconds_to_time(*duration_s);
  if (systems) cfg.systems = *systems;

  control::ChannelConfig& ch = cfg.mars.channel;
  if (channel.notification_loss) {
    ch.notification_loss = *channel.notification_loss;
  }
  if (channel.notification_delay_prob) {
    ch.notification_delay_prob = *channel.notification_delay_prob;
  }
  if (channel.notification_delay_min_s) {
    ch.notification_delay_min = seconds_to_time(*channel.notification_delay_min_s);
  }
  if (channel.notification_delay_max_s) {
    ch.notification_delay_max = seconds_to_time(*channel.notification_delay_max_s);
  }
  if (channel.read_failure) ch.read_failure = *channel.read_failure;
  if (channel.record_loss) ch.record_loss = *channel.record_loss;
  if (channel.record_corruption) {
    ch.record_corruption = *channel.record_corruption;
  }
  if (channel.read_deadline_s) {
    cfg.mars.controller.read_deadline =
        seconds_to_time(*channel.read_deadline_s);
  }
  if (channel.retry_backoff_s) {
    cfg.mars.controller.retry_backoff =
        seconds_to_time(*channel.retry_backoff_s);
  }
  if (channel.max_read_retries) {
    cfg.mars.controller.max_read_retries = *channel.max_read_retries;
  }
  dataplane::PipelineConfig& pl = cfg.mars.pipeline;
  if (telemetry.backend) {
    const auto kind = telemetry::backend_from_name(*telemetry.backend);
    if (!kind) {
      std::string msg = "unknown telemetry backend '" + *telemetry.backend +
                        "' (known:";
      for (const auto& n : telemetry::known_backend_names()) msg += " " + n;
      msg += ")";
      const std::string hint = telemetry::suggest_backend(*telemetry.backend);
      if (!hint.empty()) msg += "; did you mean '" + hint + "'?";
      throw std::invalid_argument(msg);
    }
    pl.backend.kind = *kind;
  }
  if (telemetry.ring_capacity) pl.ring_capacity = *telemetry.ring_capacity;
  if (telemetry.int_md.sample_every) {
    pl.backend.int_md.sample_every = *telemetry.int_md.sample_every;
  }
  if (telemetry.int_md.max_hops) {
    pl.backend.int_md.max_hops = *telemetry.int_md.max_hops;
  }
  if (telemetry.histogram.buckets) {
    pl.backend.histogram.buckets = *telemetry.histogram.buckets;
  }
  if (telemetry.histogram.sub_bucket_bits) {
    pl.backend.histogram.sub_bucket_bits = *telemetry.histogram.sub_bucket_bits;
  }
  if (telemetry.histogram.tail_latency_ms) {
    pl.backend.histogram.tail_latency =
        seconds_to_time(*telemetry.histogram.tail_latency_ms * 1e-3);
  }
  if (telemetry.histogram.trigger_enter) {
    pl.backend.histogram.trigger_enter = *telemetry.histogram.trigger_enter;
  }
  if (telemetry.histogram.trigger_exit) {
    pl.backend.histogram.trigger_exit = *telemetry.histogram.trigger_exit;
  }
  if (telemetry.histogram.digest_capacity) {
    pl.backend.histogram.digest_capacity = *telemetry.histogram.digest_capacity;
  }
  if (telemetry.path_id.hash) {
    const auto kind = telemetry::hash_from_name(*telemetry.path_id.hash);
    if (!kind) {
      throw std::invalid_argument("unknown path_id hash '" +
                                  *telemetry.path_id.hash +
                                  "' (known: crc16, crc32)");
    }
    pl.path_id.hash = *kind;
  }
  if (telemetry.path_id.width_bits) {
    pl.path_id.width_bits = *telemetry.path_id.width_bits;
  }
  if (mining.threads) cfg.mars.rca.mining.threads = *mining.threads;
  if (rca.accumulator.enabled) {
    cfg.mars.rca.accumulator.enabled = *rca.accumulator.enabled;
  }
  if (rca.accumulator.half_life_s) {
    cfg.mars.rca.accumulator.half_life =
        seconds_to_time(*rca.accumulator.half_life_s);
  }
  if (rca.accumulator.max_windows) {
    cfg.mars.rca.accumulator.max_windows = *rca.accumulator.max_windows;
  }
  if (rca.single_window) {
    cfg.mars.rca.single_window = *rca.single_window;
  }
  if (obs.log_level) {
    const auto level = obs::level_from_name(*obs.log_level);
    if (!level) {
      throw std::invalid_argument("unknown log level '" + *obs.log_level +
                                  "' (known: debug, info, warn, error)");
    }
    cfg.obs.log_level = *level;
  }
  if (obs.log_rate_limit_per_s) {
    cfg.obs.log_rate_limit_per_s = *obs.log_rate_limit_per_s;
  }
  if (obs.log_rate_limit_burst) {
    cfg.obs.log_rate_limit_burst = *obs.log_rate_limit_burst;
  }
  if (obs.flight_recorder.enabled) {
    cfg.obs.flight_recorder = *obs.flight_recorder.enabled;
  }
  if (obs.flight_recorder.capacity) {
    cfg.obs.flight_capacity = *obs.flight_recorder.capacity;
  }
  if (obs.flight_recorder.confidence_threshold) {
    cfg.obs.flight_confidence_threshold =
        *obs.flight_recorder.confidence_threshold;
  }
  if (obs.provenance) cfg.obs.provenance = *obs.provenance;
  if (sim.shards) cfg.sim.shards = *sim.shards;
  if (sim.control_latency_s) {
    cfg.sim.control_latency = seconds_to_time(*sim.control_latency_s);
  }

  cfg.faults.events.clear();
  for (const Fault& fault : faults) {
    const auto kind = faults::kind_from_name(fault.kind);
    if (!kind) {
      throw std::invalid_argument("unknown fault kind '" + fault.kind +
                                  "' (known: " +
                                  faults::known_kind_names() + ")");
    }
    faults::FaultEvent event;
    event.kind = *kind;
    event.at = seconds_to_time(fault.at_s);
    if (fault.duration_s) event.duration = seconds_to_time(*fault.duration_s);
    event.target_switch = fault.target_switch;
    event.target_port = fault.target_port;
    event.gray.flap_mean_up_ms = fault.gray.mean_up_ms;
    event.gray.flap_mean_down_ms = fault.gray.mean_down_ms;
    event.gray.flap_fanout = fault.gray.fanout;
    event.gray.loss_fwd = fault.gray.loss_fwd;
    event.gray.loss_rev = fault.gray.loss_rev;
    event.gray.drain_us_per_pkt = fault.gray.drain_us_per_pkt;
    event.gray.gate_depth = fault.gray.gate_depth;
    event.gray.gate_delay_ms = fault.gray.gate_delay_ms;
    cfg.faults.add(event);
  }
  return cfg;
}

std::vector<std::string> ScenarioSpec::validate() const {
  std::vector<std::string> errors;
  if (sim.shards && (*sim.shards < 1 || *sim.shards > 64)) {
    errors.push_back("spec.sim.shards must be in [1, 64] (got " +
                     std::to_string(*sim.shards) + ")");
  }
  if (telemetry.backend &&
      !telemetry::backend_from_name(*telemetry.backend)) {
    std::string msg = "spec.telemetry.backend: unknown backend '" +
                      *telemetry.backend + "' (known:";
    for (const auto& n : telemetry::known_backend_names()) msg += " " + n;
    msg += ")";
    const std::string hint = telemetry::suggest_backend(*telemetry.backend);
    if (!hint.empty()) msg += "; did you mean '" + hint + "'?";
    errors.push_back(std::move(msg));
  }
  if (telemetry.path_id.hash &&
      !telemetry::hash_from_name(*telemetry.path_id.hash)) {
    errors.push_back("spec.telemetry.path_id.hash: unknown hash '" +
                     *telemetry.path_id.hash + "' (known: crc16, crc32)");
  }
  if (telemetry.path_id.width_bits && (*telemetry.path_id.width_bits < 1 ||
                                       *telemetry.path_id.width_bits > 32)) {
    errors.push_back("spec.telemetry.path_id.width_bits must be in [1, 32] "
                     "(got " + std::to_string(*telemetry.path_id.width_bits) +
                     ")");
  }
  if (obs.log_level && !obs::level_from_name(*obs.log_level)) {
    errors.push_back("spec.obs.log_level: unknown level '" + *obs.log_level +
                     "' (known: debug, info, warn, error)");
  }
  if (obs.log_rate_limit_per_s && *obs.log_rate_limit_per_s <= 0.0) {
    errors.push_back("spec.obs.log_rate_limit_per_s must be positive (got " +
                     std::to_string(*obs.log_rate_limit_per_s) + ")");
  }
  if (obs.log_rate_limit_burst && *obs.log_rate_limit_burst == 0) {
    errors.push_back("spec.obs.log_rate_limit_burst must be nonzero");
  }
  if (obs.flight_recorder.capacity && *obs.flight_recorder.capacity == 0) {
    errors.push_back("spec.obs.flight_recorder.capacity must be nonzero");
  }
  if (obs.flight_recorder.confidence_threshold &&
      (*obs.flight_recorder.confidence_threshold < 0.0 ||
       *obs.flight_recorder.confidence_threshold > 1.0)) {
    errors.push_back(
        "spec.obs.flight_recorder.confidence_threshold must be in [0, 1] "
        "(got " +
        std::to_string(*obs.flight_recorder.confidence_threshold) + ")");
  }
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (!faults::kind_from_name(faults[i].kind)) {
      errors.push_back("faults[" + std::to_string(i) +
                       "]: unknown fault kind '" + faults[i].kind +
                       "' (known: " + faults::known_kind_names() + ")");
    }
  }
  if (!errors.empty()) return errors;  // cannot lower the spec yet
  try {
    const auto more = validate_scenario(to_config());
    errors.insert(errors.end(), more.begin(), more.end());
  } catch (const std::exception& e) {
    errors.emplace_back(e.what());
  }
  return errors;
}

std::string to_json(const ScenarioSpec& spec, int indent) {
  std::ostringstream out;
  obs::JsonWriter w(out, indent);
  w.begin_object();
  w.member("name", spec.name);

  w.key("topology").begin_object();
  w.member("name", spec.topology);
  if (spec.k) w.member("k", std::int64_t{*spec.k});
  if (spec.leaves) w.member("leaves", std::int64_t{*spec.leaves});
  if (spec.spines) w.member("spines", std::int64_t{*spec.spines});
  if (spec.edge_gbps) w.member("edge_gbps", *spec.edge_gbps);
  if (spec.core_gbps) w.member("core_gbps", *spec.core_gbps);
  if (spec.propagation_us) w.member("propagation_us", *spec.propagation_us);
  w.end_object();

  if (spec.queue_capacity) {
    w.member("queue_capacity", std::uint64_t{*spec.queue_capacity});
  }
  if (spec.flows || spec.pps || spec.inter_pod_fraction) {
    w.key("background").begin_object();
    if (spec.flows) w.member("flows", std::int64_t{*spec.flows});
    if (spec.pps) w.member("pps", *spec.pps);
    if (spec.inter_pod_fraction) {
      w.member("inter_pod_fraction", *spec.inter_pod_fraction);
    }
    w.end_object();
  }
  if (spec.duration_s) w.member("duration_s", *spec.duration_s);
  if (spec.channel.any_set()) {
    const auto& ch = spec.channel;
    w.key("channel").begin_object();
    if (ch.notification_loss) {
      w.member("notification_loss", *ch.notification_loss);
    }
    if (ch.notification_delay_prob) {
      w.member("notification_delay_prob", *ch.notification_delay_prob);
    }
    if (ch.notification_delay_min_s) {
      w.member("notification_delay_min_s", *ch.notification_delay_min_s);
    }
    if (ch.notification_delay_max_s) {
      w.member("notification_delay_max_s", *ch.notification_delay_max_s);
    }
    if (ch.read_failure) w.member("read_failure", *ch.read_failure);
    if (ch.record_loss) w.member("record_loss", *ch.record_loss);
    if (ch.record_corruption) {
      w.member("record_corruption", *ch.record_corruption);
    }
    if (ch.read_deadline_s) w.member("read_deadline_s", *ch.read_deadline_s);
    if (ch.retry_backoff_s) w.member("retry_backoff_s", *ch.retry_backoff_s);
    if (ch.max_read_retries) {
      w.member("max_read_retries", std::uint64_t{*ch.max_read_retries});
    }
    w.end_object();
  }
  if (spec.telemetry.any_set()) {
    const auto& te = spec.telemetry;
    w.key("telemetry").begin_object();
    if (te.backend) w.member("backend", *te.backend);
    if (te.ring_capacity) {
      w.member("ring_capacity", std::uint64_t{*te.ring_capacity});
    }
    if (te.int_md.any_set()) {
      w.key("int_md").begin_object();
      if (te.int_md.sample_every) {
        w.member("sample_every", std::uint64_t{*te.int_md.sample_every});
      }
      if (te.int_md.max_hops) {
        w.member("max_hops", std::uint64_t{*te.int_md.max_hops});
      }
      w.end_object();
    }
    if (te.histogram.any_set()) {
      const auto& h = te.histogram;
      w.key("histogram").begin_object();
      if (h.buckets) w.member("buckets", std::uint64_t{*h.buckets});
      if (h.sub_bucket_bits) {
        w.member("sub_bucket_bits", std::uint64_t{*h.sub_bucket_bits});
      }
      if (h.tail_latency_ms) w.member("tail_latency_ms", *h.tail_latency_ms);
      if (h.trigger_enter) w.member("trigger_enter", *h.trigger_enter);
      if (h.trigger_exit) w.member("trigger_exit", *h.trigger_exit);
      if (h.digest_capacity) {
        w.member("digest_capacity", std::uint64_t{*h.digest_capacity});
      }
      w.end_object();
    }
    if (te.path_id.any_set()) {
      w.key("path_id").begin_object();
      if (te.path_id.hash) w.member("hash", *te.path_id.hash);
      if (te.path_id.width_bits) {
        w.member("width_bits", std::uint64_t{*te.path_id.width_bits});
      }
      w.end_object();
    }
    w.end_object();
  }
  if (spec.mining.any_set()) {
    w.key("mining").begin_object();
    if (spec.mining.threads) {
      w.member("threads", std::uint64_t{*spec.mining.threads});
    }
    w.end_object();
  }
  if (spec.rca.any_set()) {
    const auto& acc = spec.rca.accumulator;
    w.key("rca").begin_object();
    w.key("accumulator").begin_object();
    if (acc.enabled) w.member("enabled", *acc.enabled);
    if (acc.half_life_s) w.member("half_life_s", *acc.half_life_s);
    if (acc.max_windows) {
      w.member("max_windows", std::uint64_t{*acc.max_windows});
    }
    w.end_object();
    if (spec.rca.single_window) {
      w.member("single_window", *spec.rca.single_window);
    }
    w.end_object();
  }
  if (spec.sim.any_set()) {
    w.key("sim").begin_object();
    if (spec.sim.shards) w.member("shards", std::int64_t{*spec.sim.shards});
    if (spec.sim.control_latency_s) {
      w.member("control_latency_s", *spec.sim.control_latency_s);
    }
    w.end_object();
  }
  if (spec.obs.any_set()) {
    const auto& ob = spec.obs;
    w.key("obs").begin_object();
    if (ob.log_level) w.member("log_level", *ob.log_level);
    if (ob.log_rate_limit_per_s) {
      w.member("log_rate_limit_per_s", *ob.log_rate_limit_per_s);
    }
    if (ob.log_rate_limit_burst) {
      w.member("log_rate_limit_burst", std::uint64_t{*ob.log_rate_limit_burst});
    }
    if (ob.flight_recorder.any_set()) {
      w.key("flight_recorder").begin_object();
      if (ob.flight_recorder.enabled) {
        w.member("enabled", *ob.flight_recorder.enabled);
      }
      if (ob.flight_recorder.capacity) {
        w.member("capacity", std::uint64_t{*ob.flight_recorder.capacity});
      }
      if (ob.flight_recorder.confidence_threshold) {
        w.member("confidence_threshold",
                 *ob.flight_recorder.confidence_threshold);
      }
      w.end_object();
    }
    if (ob.provenance) w.member("provenance", *ob.provenance);
    w.end_object();
  }
  w.member("seed", std::uint64_t{spec.seed});
  if (spec.systems) {
    w.key("systems").begin_array();
    for (const auto& name : *spec.systems) w.value(name);
    w.end_array();
  }
  w.key("faults").begin_array();
  for (const auto& fault : spec.faults) {
    w.begin_object();
    w.member("kind", fault.kind);
    w.member("at_s", fault.at_s);
    if (fault.duration_s) w.member("duration_s", *fault.duration_s);
    if (fault.target_switch) {
      w.member("target_switch", std::uint64_t{*fault.target_switch});
    }
    if (fault.target_port) {
      w.member("target_port", std::uint64_t{*fault.target_port});
    }
    if (fault.gray.any_set()) {
      const auto& g = fault.gray;
      w.key("gray").begin_object();
      if (g.mean_up_ms) w.member("mean_up_ms", *g.mean_up_ms);
      if (g.mean_down_ms) w.member("mean_down_ms", *g.mean_down_ms);
      if (g.fanout) w.member("fanout", std::int64_t{*g.fanout});
      if (g.loss_fwd) w.member("loss_fwd", *g.loss_fwd);
      if (g.loss_rev) w.member("loss_rev", *g.loss_rev);
      if (g.drain_us_per_pkt) {
        w.member("drain_us_per_pkt", *g.drain_us_per_pkt);
      }
      if (g.gate_depth) w.member("gate_depth", std::uint64_t{*g.gate_depth});
      if (g.gate_delay_ms) w.member("gate_delay_ms", *g.gate_delay_ms);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out.str();
}

ScenarioSpec parse_scenario_spec(std::string_view json) {
  obs::JsonValue doc;
  try {
    doc = obs::JsonValue::parse(json);
  } catch (const obs::JsonParseError& e) {
    throw std::invalid_argument(e.what());
  }
  if (!doc.is_object()) {
    throw std::invalid_argument("spec: expected a top-level JSON object");
  }
  reject_unknown_keys(doc,
                      {"name", "topology", "queue_capacity", "background",
                       "duration_s", "seed", "systems", "faults", "channel",
                       "telemetry", "mining", "rca", "sim", "obs"},
                      "spec");

  ScenarioSpec spec;
  if (const auto* name = doc.find("name")) {
    spec.name = as_string(*name, "spec.name");
  }
  if (const auto* topo = doc.find("topology")) {
    if (!topo->is_object()) fail("spec.topology", "expected an object");
    reject_unknown_keys(*topo,
                        {"name", "k", "leaves", "spines", "edge_gbps",
                         "core_gbps", "propagation_us"},
                        "spec.topology");
    if (const auto* n = topo->find("name")) {
      spec.topology = as_string(*n, "spec.topology.name");
    }
    if (const auto* k = topo->find("k")) {
      spec.k = as_count(*k, "spec.topology.k");
    }
    if (const auto* leaves = topo->find("leaves")) {
      spec.leaves = as_count(*leaves, "spec.topology.leaves");
    }
    if (const auto* spines = topo->find("spines")) {
      spec.spines = as_count(*spines, "spec.topology.spines");
    }
    if (const auto* e = topo->find("edge_gbps")) {
      spec.edge_gbps = as_number(*e, "spec.topology.edge_gbps");
    }
    if (const auto* c = topo->find("core_gbps")) {
      spec.core_gbps = as_number(*c, "spec.topology.core_gbps");
    }
    if (const auto* p = topo->find("propagation_us")) {
      spec.propagation_us = as_number(*p, "spec.topology.propagation_us");
    }
  }
  if (const auto* qc = doc.find("queue_capacity")) {
    spec.queue_capacity =
        static_cast<std::uint32_t>(as_uint(*qc, "spec.queue_capacity"));
  }
  if (const auto* bg = doc.find("background")) {
    if (!bg->is_object()) fail("spec.background", "expected an object");
    reject_unknown_keys(*bg, {"flows", "pps", "inter_pod_fraction"},
                        "spec.background");
    if (const auto* flows = bg->find("flows")) {
      spec.flows = as_count(*flows, "spec.background.flows");
    }
    if (const auto* pps = bg->find("pps")) {
      spec.pps = as_number(*pps, "spec.background.pps");
    }
    if (const auto* f = bg->find("inter_pod_fraction")) {
      spec.inter_pod_fraction =
          as_number(*f, "spec.background.inter_pod_fraction");
    }
  }
  if (const auto* d = doc.find("duration_s")) {
    spec.duration_s = as_number(*d, "spec.duration_s");
  }
  if (const auto* ch = doc.find("channel")) {
    if (!ch->is_object()) fail("spec.channel", "expected an object");
    reject_unknown_keys(
        *ch,
        {"notification_loss", "notification_delay_prob",
         "notification_delay_min_s", "notification_delay_max_s",
         "read_failure", "record_loss", "record_corruption",
         "read_deadline_s", "retry_backoff_s", "max_read_retries"},
        "spec.channel");
    if (const auto* v = ch->find("notification_loss")) {
      spec.channel.notification_loss =
          as_number(*v, "spec.channel.notification_loss");
    }
    if (const auto* v = ch->find("notification_delay_prob")) {
      spec.channel.notification_delay_prob =
          as_number(*v, "spec.channel.notification_delay_prob");
    }
    if (const auto* v = ch->find("notification_delay_min_s")) {
      spec.channel.notification_delay_min_s =
          as_number(*v, "spec.channel.notification_delay_min_s");
    }
    if (const auto* v = ch->find("notification_delay_max_s")) {
      spec.channel.notification_delay_max_s =
          as_number(*v, "spec.channel.notification_delay_max_s");
    }
    if (const auto* v = ch->find("read_failure")) {
      spec.channel.read_failure = as_number(*v, "spec.channel.read_failure");
    }
    if (const auto* v = ch->find("record_loss")) {
      spec.channel.record_loss = as_number(*v, "spec.channel.record_loss");
    }
    if (const auto* v = ch->find("record_corruption")) {
      spec.channel.record_corruption =
          as_number(*v, "spec.channel.record_corruption");
    }
    if (const auto* v = ch->find("read_deadline_s")) {
      spec.channel.read_deadline_s =
          as_number(*v, "spec.channel.read_deadline_s");
    }
    if (const auto* v = ch->find("retry_backoff_s")) {
      spec.channel.retry_backoff_s =
          as_number(*v, "spec.channel.retry_backoff_s");
    }
    if (const auto* v = ch->find("max_read_retries")) {
      spec.channel.max_read_retries = static_cast<std::uint32_t>(
          as_uint(*v, "spec.channel.max_read_retries"));
    }
  }
  if (const auto* te = doc.find("telemetry")) {
    if (!te->is_object()) fail("spec.telemetry", "expected an object");
    reject_unknown_keys(
        *te, {"backend", "ring_capacity", "int_md", "histogram", "path_id"},
        "spec.telemetry");
    if (const auto* v = te->find("backend")) {
      spec.telemetry.backend = as_string(*v, "spec.telemetry.backend");
    }
    if (const auto* v = te->find("ring_capacity")) {
      spec.telemetry.ring_capacity = static_cast<std::uint32_t>(
          as_uint(*v, "spec.telemetry.ring_capacity"));
    }
    if (const auto* im = te->find("int_md")) {
      if (!im->is_object()) fail("spec.telemetry.int_md", "expected an object");
      reject_unknown_keys(*im, {"sample_every", "max_hops"},
                          "spec.telemetry.int_md");
      if (const auto* v = im->find("sample_every")) {
        spec.telemetry.int_md.sample_every = static_cast<std::uint32_t>(
            as_uint(*v, "spec.telemetry.int_md.sample_every"));
      }
      if (const auto* v = im->find("max_hops")) {
        spec.telemetry.int_md.max_hops = static_cast<std::uint32_t>(
            as_uint(*v, "spec.telemetry.int_md.max_hops"));
      }
    }
    if (const auto* hi = te->find("histogram")) {
      if (!hi->is_object()) {
        fail("spec.telemetry.histogram", "expected an object");
      }
      reject_unknown_keys(*hi,
                          {"buckets", "sub_bucket_bits", "tail_latency_ms",
                           "trigger_enter", "trigger_exit", "digest_capacity"},
                          "spec.telemetry.histogram");
      if (const auto* v = hi->find("buckets")) {
        spec.telemetry.histogram.buckets = static_cast<std::uint32_t>(
            as_uint(*v, "spec.telemetry.histogram.buckets"));
      }
      if (const auto* v = hi->find("sub_bucket_bits")) {
        spec.telemetry.histogram.sub_bucket_bits = static_cast<std::uint32_t>(
            as_uint(*v, "spec.telemetry.histogram.sub_bucket_bits"));
      }
      if (const auto* v = hi->find("tail_latency_ms")) {
        spec.telemetry.histogram.tail_latency_ms =
            as_number(*v, "spec.telemetry.histogram.tail_latency_ms");
      }
      if (const auto* v = hi->find("trigger_enter")) {
        spec.telemetry.histogram.trigger_enter =
            as_number(*v, "spec.telemetry.histogram.trigger_enter");
      }
      if (const auto* v = hi->find("trigger_exit")) {
        spec.telemetry.histogram.trigger_exit =
            as_number(*v, "spec.telemetry.histogram.trigger_exit");
      }
      if (const auto* v = hi->find("digest_capacity")) {
        spec.telemetry.histogram.digest_capacity = static_cast<std::uint32_t>(
            as_uint(*v, "spec.telemetry.histogram.digest_capacity"));
      }
    }
    if (const auto* pid = te->find("path_id")) {
      if (!pid->is_object()) {
        fail("spec.telemetry.path_id", "expected an object");
      }
      reject_unknown_keys(*pid, {"hash", "width_bits"},
                          "spec.telemetry.path_id");
      if (const auto* v = pid->find("hash")) {
        spec.telemetry.path_id.hash =
            as_string(*v, "spec.telemetry.path_id.hash");
      }
      if (const auto* v = pid->find("width_bits")) {
        spec.telemetry.path_id.width_bits = static_cast<std::uint32_t>(
            as_uint(*v, "spec.telemetry.path_id.width_bits"));
      }
    }
  }
  if (const auto* mining = doc.find("mining")) {
    if (!mining->is_object()) fail("spec.mining", "expected an object");
    reject_unknown_keys(*mining, {"threads"}, "spec.mining");
    if (const auto* v = mining->find("threads")) {
      spec.mining.threads =
          static_cast<std::uint32_t>(as_uint(*v, "spec.mining.threads"));
    }
  }
  if (const auto* rca = doc.find("rca")) {
    if (!rca->is_object()) fail("spec.rca", "expected an object");
    reject_unknown_keys(*rca, {"accumulator", "single_window"}, "spec.rca");
    if (const auto* acc = rca->find("accumulator")) {
      if (!acc->is_object()) {
        fail("spec.rca.accumulator", "expected an object");
      }
      reject_unknown_keys(*acc, {"enabled", "half_life_s", "max_windows"},
                          "spec.rca.accumulator");
      if (const auto* v = acc->find("enabled")) {
        spec.rca.accumulator.enabled =
            as_bool(*v, "spec.rca.accumulator.enabled");
      }
      if (const auto* v = acc->find("half_life_s")) {
        spec.rca.accumulator.half_life_s =
            as_number(*v, "spec.rca.accumulator.half_life_s");
      }
      if (const auto* v = acc->find("max_windows")) {
        spec.rca.accumulator.max_windows = static_cast<std::uint32_t>(
            as_uint(*v, "spec.rca.accumulator.max_windows"));
      }
    }
    if (const auto* v = rca->find("single_window")) {
      spec.rca.single_window = as_bool(*v, "spec.rca.single_window");
    }
  }
  if (const auto* sim = doc.find("sim")) {
    if (!sim->is_object()) fail("spec.sim", "expected an object");
    reject_unknown_keys(*sim, {"shards", "control_latency_s"}, "spec.sim");
    if (const auto* v = sim->find("shards")) {
      spec.sim.shards = as_count(*v, "spec.sim.shards");
    }
    if (const auto* v = sim->find("control_latency_s")) {
      spec.sim.control_latency_s = as_number(*v, "spec.sim.control_latency_s");
    }
  }
  if (const auto* ob = doc.find("obs")) {
    if (!ob->is_object()) fail("spec.obs", "expected an object");
    reject_unknown_keys(*ob,
                        {"log_level", "log_rate_limit_per_s",
                         "log_rate_limit_burst", "flight_recorder",
                         "provenance"},
                        "spec.obs");
    if (const auto* v = ob->find("log_level")) {
      spec.obs.log_level = as_string(*v, "spec.obs.log_level");
    }
    if (const auto* v = ob->find("log_rate_limit_per_s")) {
      spec.obs.log_rate_limit_per_s =
          as_number(*v, "spec.obs.log_rate_limit_per_s");
    }
    if (const auto* v = ob->find("log_rate_limit_burst")) {
      spec.obs.log_rate_limit_burst = static_cast<std::uint32_t>(
          as_uint(*v, "spec.obs.log_rate_limit_burst"));
    }
    if (const auto* fr = ob->find("flight_recorder")) {
      if (!fr->is_object()) {
        fail("spec.obs.flight_recorder", "expected an object");
      }
      reject_unknown_keys(*fr, {"enabled", "capacity", "confidence_threshold"},
                          "spec.obs.flight_recorder");
      if (const auto* v = fr->find("enabled")) {
        spec.obs.flight_recorder.enabled =
            as_bool(*v, "spec.obs.flight_recorder.enabled");
      }
      if (const auto* v = fr->find("capacity")) {
        spec.obs.flight_recorder.capacity = static_cast<std::uint32_t>(
            as_uint(*v, "spec.obs.flight_recorder.capacity"));
      }
      if (const auto* v = fr->find("confidence_threshold")) {
        spec.obs.flight_recorder.confidence_threshold =
            as_number(*v, "spec.obs.flight_recorder.confidence_threshold");
      }
    }
    if (const auto* v = ob->find("provenance")) {
      spec.obs.provenance = as_bool(*v, "spec.obs.provenance");
    }
  }
  if (const auto* seed = doc.find("seed")) {
    spec.seed = as_uint(*seed, "spec.seed");
  }
  if (const auto* systems = doc.find("systems")) {
    if (!systems->is_array()) fail("spec.systems", "expected an array");
    std::vector<std::string> names;
    for (std::size_t i = 0; i < systems->size(); ++i) {
      names.push_back(as_string(systems->at(i),
                                "spec.systems[" + std::to_string(i) + "]"));
    }
    spec.systems = std::move(names);
  }
  if (const auto* faults = doc.find("faults")) {
    if (!faults->is_array()) fail("spec.faults", "expected an array");
    for (std::size_t i = 0; i < faults->size(); ++i) {
      spec.faults.push_back(parse_fault(
          faults->at(i), "spec.faults[" + std::to_string(i) + "]"));
    }
  }
  return spec;
}

ScenarioSpec load_scenario_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot read scenario spec '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_scenario_spec(buffer.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

}  // namespace mars
