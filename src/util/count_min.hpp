#pragma once
// Count-Min sketch: fixed-memory approximate counters.
//
// The prototype's Ingress/Egress tables use exact per-flow maps, which is
// faithful to the paper's testbed (tens of flows). At datacenter flow
// counts, per-flow exact state outgrows switch SRAM; production P4
// counting uses sketches. This sketch is the deployment path for the
// Ingress Table: point-insert/point-query with a one-sided error bound
// (estimates never undercount; overcount <= 2N/width with probability
// 1 - 2^-depth).

#include <cstdint>
#include <vector>

#include "util/crc.hpp"

namespace mars::util {

class CountMinSketch {
 public:
  /// width: counters per row (error ~ 2N/width); depth: independent rows.
  CountMinSketch(std::size_t width, std::size_t depth)
      : width_(width), depth_(depth), counters_(width * depth, 0) {}

  void add(std::uint64_t key, std::uint64_t count = 1) {
    for (std::size_t row = 0; row < depth_; ++row) {
      counters_[row * width_ + index(key, row)] += count;
    }
    total_ += count;
  }

  /// Point query: an upper bound on the true count (never lower).
  [[nodiscard]] std::uint64_t estimate(std::uint64_t key) const {
    std::uint64_t best = UINT64_MAX;
    for (std::size_t row = 0; row < depth_; ++row) {
      best = std::min(best, counters_[row * width_ + index(key, row)]);
    }
    return best == UINT64_MAX ? 0 : best;
  }

  void clear() {
    counters_.assign(counters_.size(), 0);
    total_ = 0;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }
  /// SRAM bytes this sketch occupies on-switch (32-bit counters on
  /// hardware; modeled as such for accounting even though the host uses
  /// 64-bit lanes).
  [[nodiscard]] std::size_t memory_bytes() const {
    return width_ * depth_ * 4;
  }

 private:
  [[nodiscard]] std::size_t index(std::uint64_t key, std::size_t row) const {
    // Row-salted CRC32 over the key, as a P4 hash generator would do.
    const std::uint32_t words[3] = {
        static_cast<std::uint32_t>(key),
        static_cast<std::uint32_t>(key >> 32),
        static_cast<std::uint32_t>(row * 0x9E3779B9u + 1u)};
    return crc32_words(words) % width_;
  }

  std::size_t width_;
  std::size_t depth_;
  std::vector<std::uint64_t> counters_;
  std::uint64_t total_ = 0;
};

}  // namespace mars::util
