#pragma once
// CRC-16/CCITT-FALSE and CRC-32 (IEEE 802.3) used by the PathID engine.
//
// MARS updates the PathID at every hop by hashing
// {PathID, switchID, ingress port, egress port, control} (paper §4.1).
// The paper names CRC16/CRC32 as the hash algorithms available in the
// Tofino hash generators, so we provide both with the standard polynomials.

#include <cstddef>
#include <cstdint>
#include <span>

namespace mars::util {

/// CRC-16/CCITT-FALSE: poly 0x1021, init 0xFFFF, no reflection, no xorout.
/// This matches the `crc16` extern commonly exposed by P4 targets.
class Crc16 {
 public:
  /// One-shot CRC over a byte range.
  [[nodiscard]] static std::uint16_t compute(std::span<const std::byte> data);

  /// Incremental interface: feed bytes, then read value().
  void update(std::span<const std::byte> data);
  void update(std::uint8_t byte);
  [[nodiscard]] std::uint16_t value() const { return state_; }
  void reset() { state_ = kInit; }

 private:
  static constexpr std::uint16_t kInit = 0xFFFF;
  std::uint16_t state_ = kInit;
};

/// CRC-32 (IEEE 802.3): poly 0x04C11DB7 reflected (0xEDB88320),
/// init 0xFFFFFFFF, reflected in/out, final xor 0xFFFFFFFF.
class Crc32 {
 public:
  [[nodiscard]] static std::uint32_t compute(std::span<const std::byte> data);

  void update(std::span<const std::byte> data);
  void update(std::uint8_t byte);
  [[nodiscard]] std::uint32_t value() const { return state_ ^ kXorOut; }
  void reset() { state_ = kInit; }

 private:
  static constexpr std::uint32_t kInit = 0xFFFFFFFFu;
  static constexpr std::uint32_t kXorOut = 0xFFFFFFFFu;
  std::uint32_t state_ = kInit;
};

/// Hash a sequence of 32-bit words with CRC16 (little-endian byte order).
/// Convenience used by the PathID engine.
[[nodiscard]] std::uint16_t crc16_words(std::span<const std::uint32_t> words);

/// Hash a sequence of 32-bit words with CRC32 (little-endian byte order).
[[nodiscard]] std::uint32_t crc32_words(std::span<const std::uint32_t> words);

}  // namespace mars::util
