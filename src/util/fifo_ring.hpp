#pragma once
// Growable circular FIFO.
//
// std::deque allocates and frees ~512-byte blocks as elements roll through,
// so a switch port queue in steady state still produces heap traffic on
// every few packets. FifoRing keeps a power-of-two array that only grows
// (doubling) and never shrinks: once warm, push/pop are pointer bumps with
// zero allocations. Distinct from util::RingBuffer, which is the paper's
// fixed-capacity *overwriting* Ring Table storage.

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace mars::util {

template <typename T>
class FifoRing {
 public:
  FifoRing() = default;

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Current allocated capacity (doubles on demand, never shrinks).
  [[nodiscard]] std::size_t capacity() const { return data_.size(); }

  void push_back(T value) {
    if (count_ == data_.size()) grow();
    data_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  [[nodiscard]] T& front() {
    assert(count_ > 0);
    return data_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(count_ > 0);
    return data_[head_];
  }

  void pop_front() {
    assert(count_ > 0);
    data_[head_] = T{};  // release resources held by the departed element
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  /// Drop the front element WITHOUT clearing its slot. Only valid when the
  /// caller has already moved the element's resources out (the moved-from
  /// shell owns nothing); skips the T{} construct+assign of pop_front on
  /// the per-packet service path.
  void drop_front_moved() {
    assert(count_ > 0);
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  /// Element by logical index: 0 is the front (oldest).
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < count_);
    return data_[(head_ + i) & mask_];
  }

  void clear() {
    for (std::size_t i = 0; i < count_; ++i) {
      data_[(head_ + i) & mask_] = T{};
    }
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = data_.empty() ? kInitialCapacity
                                              : data_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(data_[(head_ + i) & mask_]);
    }
    data_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  static constexpr std::size_t kInitialCapacity = 8;

  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace mars::util
