#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mars::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double median(std::span<const double> values) {
  std::vector<double> copy(values.begin(), values.end());
  return median_inplace(copy);
}

double median_inplace(std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<long>(mid),
                   values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(values.begin(), values.begin() + static_cast<long>(mid));
  return 0.5 * (lo + hi);
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, copy.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return copy[lo] + frac * (copy[hi] - copy[lo]);
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.empty()) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double mad_sigma(std::span<const double> values) {
  if (values.empty()) return 0.0;
  const double m = median(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::abs(v - m));
  return 1.4826 * median_inplace(deviations);
}

std::vector<double> ecdf(std::span<const double> values,
                         std::span<const double> at) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(at.size());
  for (double point : at) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), point);
    const auto count = static_cast<double>(it - sorted.begin());
    out.push_back(sorted.empty() ? 0.0
                                 : count / static_cast<double>(sorted.size()));
  }
  return out;
}

}  // namespace mars::util
