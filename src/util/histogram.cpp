#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mars::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) { add_n(x, 1); }

void Histogram::add_n(double x, std::uint64_t n) {
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  counts_[static_cast<std::size_t>(idx)] += n;
  total_ += n;
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::cumulative(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i <= bin; ++i) acc += counts_[i];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < bins(); ++i) {
    acc += counts_[i];
    if (acc >= target) return lo_ + (static_cast<double>(i) + 1.0) * width_;
  }
  return hi_;
}

CdfSeries make_cdf(std::string label, std::span<const double> samples) {
  CdfSeries series;
  series.label = std::move(label);
  series.x.assign(samples.begin(), samples.end());
  std::sort(series.x.begin(), series.x.end());
  series.f.resize(series.x.size());
  const auto n = static_cast<double>(series.x.size());
  for (std::size_t i = 0; i < series.x.size(); ++i) {
    series.f[i] = static_cast<double>(i + 1) / n;
  }
  return series;
}

}  // namespace mars::util
