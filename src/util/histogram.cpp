#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace mars::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) { add_n(x, 1); }

void Histogram::add_n(double x, std::uint64_t n) {
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  counts_[static_cast<std::size_t>(idx)] += n;
  total_ += n;
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::cumulative(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i <= bin; ++i) acc += counts_[i];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < bins(); ++i) {
    acc += counts_[i];
    if (acc >= target) return lo_ + (static_cast<double>(i) + 1.0) * width_;
  }
  return hi_;
}

LogLinearHistogram::LogLinearHistogram(std::uint32_t sub_bucket_bits,
                                       std::size_t max_buckets)
    : sub_bits_(sub_bucket_bits), sub_count_(std::uint64_t{1} << sub_bucket_bits),
      counts_(max_buckets, 0) {
  assert(max_buckets > 0 && sub_bucket_bits < 32);
}

void LogLinearHistogram::add_n(std::uint64_t v, std::uint64_t n) {
  std::size_t idx = bucket_of(v);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  counts_[idx] += n;
  total_ += n;
}

void LogLinearHistogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

std::size_t LogLinearHistogram::bucket_of(std::uint64_t v) const {
  if (v < sub_count_) return static_cast<std::size_t>(v);
  // Power-of-two range [2^e, 2^{e+1}) split into sub_count_ linear
  // sub-buckets of width 2^{e - sub_bits_}.
  const unsigned e = 63u - static_cast<unsigned>(std::countl_zero(v));
  const unsigned shift = e - sub_bits_;
  const std::uint64_t offset = (v - (std::uint64_t{1} << e)) >> shift;
  return static_cast<std::size_t>(
      sub_count_ + static_cast<std::uint64_t>(shift) * sub_count_ + offset);
}

std::uint64_t LogLinearHistogram::bucket_floor(std::size_t bucket) const {
  if (bucket < sub_count_) return bucket;
  const std::uint64_t k = (bucket - sub_count_) / sub_count_;  // e - sub_bits_
  const std::uint64_t j = (bucket - sub_count_) % sub_count_;
  const std::uint64_t e = k + sub_bits_;
  return (std::uint64_t{1} << e) + (j << k);
}

double LogLinearHistogram::fraction_above(std::uint64_t threshold) const {
  if (total_ == 0) return 0.0;
  std::size_t thr = bucket_of(threshold);
  if (thr >= counts_.size()) return 0.0;  // threshold past the clamp bucket
  std::uint64_t above = 0;
  for (std::size_t i = thr + 1; i < counts_.size(); ++i) above += counts_[i];
  return static_cast<double>(above) / static_cast<double>(total_);
}

CdfSeries make_cdf(std::string label, std::span<const double> samples) {
  CdfSeries series;
  series.label = std::move(label);
  series.x.assign(samples.begin(), samples.end());
  std::sort(series.x.begin(), series.x.end());
  series.f.resize(series.x.size());
  const auto n = static_cast<double>(series.x.size());
  for (std::size_t i = 0; i < series.x.size(); ++i) {
    series.f[i] = static_cast<double>(i + 1) / n;
  }
  return series;
}

}  // namespace mars::util
