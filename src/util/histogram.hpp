#pragma once
// Fixed-bin histogram and CDF summaries for evaluation figures
// (e.g. Fig. 2's link-utilization CDF).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mars::util {

/// Linear fixed-bin histogram over [lo, hi). Out-of-range samples are
/// clamped into the first/last bin so no data is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_n(double x, std::uint64_t n);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    return counts_[bin];
  }
  /// Center value of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Cumulative fraction of samples at or below the upper edge of `bin`.
  [[nodiscard]] double cumulative(std::size_t bin) const;
  /// Approximate quantile from bin boundaries.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Log-linear histogram over non-negative integer samples, HdrHistogram
/// style: values below 2^sub_bucket_bits get exact unit-width buckets;
/// every power-of-two range above is split into 2^sub_bucket_bits linear
/// sub-buckets. This is the in-switch aggregation model for the histogram
/// telemetry backend — the layout a Tofino register array can hold (one
/// counter per bucket, bucket index computable with a priority encoder
/// plus a shift), unlike the float-binned Histogram above.
///
/// Samples past the last bucket are clamped into it (same no-silent-drop
/// contract as Histogram).
class LogLinearHistogram {
 public:
  LogLinearHistogram(std::uint32_t sub_bucket_bits, std::size_t max_buckets);

  void add(std::uint64_t v) { add_n(v, 1); }
  void add_n(std::uint64_t v, std::uint64_t n);
  void clear();

  /// Bucket index `v` falls into, before clamping to max_buckets.
  [[nodiscard]] std::size_t bucket_of(std::uint64_t v) const;
  /// Smallest value mapping to `bucket` (its quantization floor).
  [[nodiscard]] std::uint64_t bucket_floor(std::size_t bucket) const;

  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const {
    return counts_[bucket];
  }
  /// Fraction of samples in buckets strictly above the one containing
  /// `threshold` — i.e. samples known to exceed the threshold's bucket.
  [[nodiscard]] double fraction_above(std::uint64_t threshold) const;

 private:
  std::uint32_t sub_bits_;
  std::uint64_t sub_count_;  ///< 1 << sub_bits_
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// A (x, F(x)) point series for plotting empirical CDFs.
struct CdfSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> f;
};

/// Build an exact empirical CDF series from raw samples.
[[nodiscard]] CdfSeries make_cdf(std::string label,
                                 std::span<const double> samples);

}  // namespace mars::util
