#pragma once
// Fixed-bin histogram and CDF summaries for evaluation figures
// (e.g. Fig. 2's link-utilization CDF).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mars::util {

/// Linear fixed-bin histogram over [lo, hi). Out-of-range samples are
/// clamped into the first/last bin so no data is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_n(double x, std::uint64_t n);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    return counts_[bin];
  }
  /// Center value of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Cumulative fraction of samples at or below the upper edge of `bin`.
  [[nodiscard]] double cumulative(std::size_t bin) const;
  /// Approximate quantile from bin boundaries.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// A (x, F(x)) point series for plotting empirical CDFs.
struct CdfSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> f;
};

/// Build an exact empirical CDF series from raw samples.
[[nodiscard]] CdfSeries make_cdf(std::string label,
                                 std::span<const double> samples);

}  // namespace mars::util
