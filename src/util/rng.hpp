#pragma once
// Deterministic, fast random number generation for simulation.
//
// Every stochastic component in the simulator (traffic generation, ECMP
// hashing perturbation, fault placement, reservoir replacement) takes an
// explicit Rng so experiments are reproducible from a single seed.

#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

namespace mars::util {

/// splitmix64 — used to expand a single 64-bit seed into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** — a small, fast, high-quality PRNG.
/// Satisfies UniformRandomBitGenerator so it also works with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5EEDDA7A5EEDDA7Aull) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = operator()();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = operator()();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda) {
    return -std::log1p(-uniform()) / lambda;
  }

  /// Standard normal via Box–Muller.
  double normal() {
    const double u1 = 1.0 - uniform();  // avoid log(0)
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Lognormal with parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Pareto (heavy-tailed) with scale xm and shape alpha.
  double pareto(double xm, double alpha) {
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  /// A decorrelated child generator (for giving subsystems their own stream).
  Rng fork() { return Rng(operator()()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace mars::util
