#pragma once
// Fixed-capacity overwriting ring buffer.
//
// This is the storage discipline of the MARS Ring Table (paper §4.2.2):
// "When RT is full, the oldest data will be covered by the newest data."

#include <cassert>
#include <cstddef>
#include <vector>

namespace mars::util {

/// Fixed-capacity FIFO that overwrites its oldest element when full.
/// Iteration order (via for_each / at) is oldest-to-newest.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : capacity_(capacity) {
    assert(capacity > 0);
    data_.reserve(capacity);
  }

  /// Append, overwriting the oldest element if at capacity.
  /// Returns true if an element was overwritten.
  bool push(T value) {
    if (data_.size() < capacity_) {
      data_.push_back(std::move(value));
      return false;
    }
    data_[head_] = std::move(value);
    head_ = (head_ + 1) % capacity_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] bool full() const { return data_.size() == capacity_; }

  /// Element by logical index: 0 is the oldest retained element.
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < data_.size());
    return data_[(head_ + i) % data_.size()];
  }

  /// Most recently pushed element.
  [[nodiscard]] const T& back() const {
    assert(!data_.empty());
    return data_[(head_ + data_.size() - 1) % data_.size()];
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < data_.size(); ++i) fn(at(i));
  }

  /// Copy contents oldest-to-newest into a vector (used when the control
  /// plane drains a Ring Table for diagnosis).
  [[nodiscard]] std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(data_.size());
    for_each([&](const T& v) { out.push_back(v); });
    return out;
  }

  void clear() {
    data_.clear();
    head_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest element once full
  std::vector<T> data_;
};

}  // namespace mars::util
