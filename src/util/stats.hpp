#pragma once
// Streaming and batch statistics used across MARS.
//
// The reservoir detector (paper Alg. 1) thresholds on median(R) + C·σ(R);
// the evaluation computes CDFs, percentiles and classification scores.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mars::util {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void clear();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance. Zero for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of a sample. Copies the input (non-destructive). Empty input -> 0.
[[nodiscard]] double median(std::span<const double> values);

/// In-place median via nth_element. Empty input -> 0.
[[nodiscard]] double median_inplace(std::vector<double>& values);

/// q-quantile in [0,1] using linear interpolation (type-7, the numpy
/// default). Empty input -> 0.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Population standard deviation of a sample. Empty input -> 0.
[[nodiscard]] double stddev(std::span<const double> values);

/// Median absolute deviation scaled to be consistent with σ for normal
/// data (x1.4826). Robust: a few extreme outliers barely move it.
[[nodiscard]] double mad_sigma(std::span<const double> values);

/// Mean of a sample. Empty input -> 0.
[[nodiscard]] double mean(std::span<const double> values);

/// Empirical CDF: for each point in `at`, the fraction of `values` <= point.
[[nodiscard]] std::vector<double> ecdf(std::span<const double> values,
                                       std::span<const double> at);

}  // namespace mars::util
