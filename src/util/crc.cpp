#include "util/crc.hpp"

#include <array>

namespace mars::util {
namespace {

constexpr std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t crc = static_cast<std::uint16_t>(i << 8);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000u) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021u)
                            : static_cast<std::uint16_t>(crc << 1);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

// Slicing-by-4 extension tables: kCrc32Slice[k][i] advances the CRC of
// byte i by k more zero bytes. Lets crc32_words fold a whole 32-bit word
// per step (4 parallel lookups) instead of four serial byte steps, with
// bit-identical output — the ECMP hash runs on every hop of every packet.
constexpr std::array<std::array<std::uint32_t, 256>, 4> make_crc32_slices() {
  std::array<std::array<std::uint32_t, 256>, 4> t{};
  t[0] = make_crc32_table();
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (int k = 1; k < 4; ++k) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    }
  }
  return t;
}

constexpr auto kCrc16Table = make_crc16_table();
constexpr auto kCrc32Slices = make_crc32_slices();
constexpr const auto& kCrc32Table = kCrc32Slices[0];

}  // namespace

void Crc16::update(std::uint8_t byte) {
  const auto idx = static_cast<std::uint8_t>((state_ >> 8) ^ byte);
  state_ = static_cast<std::uint16_t>((state_ << 8) ^ kCrc16Table[idx]);
}

void Crc16::update(std::span<const std::byte> data) {
  for (std::byte b : data) update(static_cast<std::uint8_t>(b));
}

std::uint16_t Crc16::compute(std::span<const std::byte> data) {
  Crc16 crc;
  crc.update(data);
  return crc.value();
}

void Crc32::update(std::uint8_t byte) {
  const auto idx = static_cast<std::uint8_t>((state_ ^ byte) & 0xFFu);
  state_ = (state_ >> 8) ^ kCrc32Table[idx];
}

void Crc32::update(std::span<const std::byte> data) {
  for (std::byte b : data) update(static_cast<std::uint8_t>(b));
}

std::uint32_t Crc32::compute(std::span<const std::byte> data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

namespace {
template <typename Crc>
void feed_words(Crc& crc, std::span<const std::uint32_t> words) {
  for (std::uint32_t w : words) {
    crc.update(static_cast<std::uint8_t>(w & 0xFFu));
    crc.update(static_cast<std::uint8_t>((w >> 8) & 0xFFu));
    crc.update(static_cast<std::uint8_t>((w >> 16) & 0xFFu));
    crc.update(static_cast<std::uint8_t>((w >> 24) & 0xFFu));
  }
}
}  // namespace

std::uint16_t crc16_words(std::span<const std::uint32_t> words) {
  Crc16 crc;
  feed_words(crc, words);
  return crc.value();
}

std::uint32_t crc32_words(std::span<const std::uint32_t> words) {
  // Slicing-by-4: XOR the little-endian word into the state (equivalent to
  // feeding its four bytes low-to-high for a reflected CRC), then combine
  // the four per-byte advance tables in one step.
  std::uint32_t state = 0xFFFFFFFFu;
  for (std::uint32_t w : words) {
    const std::uint32_t x = state ^ w;
    state = kCrc32Slices[3][x & 0xFFu] ^ kCrc32Slices[2][(x >> 8) & 0xFFu] ^
            kCrc32Slices[1][(x >> 16) & 0xFFu] ^ kCrc32Slices[0][x >> 24];
  }
  return state ^ 0xFFFFFFFFu;
}

}  // namespace mars::util
