#pragma once
// Pending-event set for the discrete-event simulator.
//
// A hand-rolled binary heap keyed by (time, sequence). The sequence number
// breaks ties deterministically in insertion order, which keeps simulations
// reproducible regardless of heap internals. Handlers live inside heap
// entries so memory is reclaimed as events execute — long-running
// simulations (hours of virtual time, billions of events) stay at O(live
// events) memory. Cancellation is lazy via a small tombstone set.

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace mars::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedule fn at absolute time t. Returns an id usable with cancel().
  std::uint64_t schedule(Time t, EventFn fn);

  /// Cancel a scheduled event. Returns false if it already ran or was
  /// cancelled. The entry is skipped (and reclaimed) when it surfaces.
  bool cancel(std::uint64_t id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }
  /// Time of the earliest live event. Undefined when empty().
  [[nodiscard]] Time next_time();

  /// Remove and return the earliest live event.
  std::pair<Time, EventFn> pop();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    EventFn fn;
  };

  [[nodiscard]] static bool later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_dead_top();

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> pending_;  // ids currently scheduled
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace mars::sim
