#pragma once
// Pending-event set for the discrete-event simulator.
//
// A 4-ary min-heap of (time, sequence) keys over a slot arena holding the
// handlers. The sequence number breaks ties deterministically in insertion
// order, which keeps simulations reproducible regardless of heap
// internals.
//
// Event ids are generation-stamped: the returned uint64 packs
// (generation << 32 | slot index), and a slot's generation bumps every
// time it is vacated (pop or cancel). cancel() is O(1) and hash-free: it
// validates the stamp, destroys the handler, and bumps the generation;
// the heap entry becomes a tombstone that pop()/next_time() recognise by
// its stale stamp and discard. Sift operations touch only the contiguous
// heap array — no per-move bookkeeping writes into the arena. Handlers
// are reclaimed as events execute or cancel, so long-running simulations
// (hours of virtual time, billions of events) stay at O(live events)
// memory with zero steady-state allocations.
//
// A stale id is never honoured: a reused slot carries a new generation,
// so cancel() on an already-run (or already-cancelled) event returns
// false even after its slot has been recycled. (Each slot would need to
// be reused 2^32 times between a schedule and its cancel to alias.)

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"

namespace mars::sim {

class EventQueue {
 public:
  /// Schedule fn at absolute time t. Returns an id usable with cancel().
  /// The callable is constructed directly in its arena slot — a lambda
  /// that fits the inline buffer never touches the heap or relocates.
  template <typename F>
  std::uint64_t schedule(Time t, F&& fn) {
    const std::uint32_t idx = alloc_slot();
    slots_[idx].fn.assign(std::forward<F>(fn));
    return push_scheduled(t, idx);
  }

  /// Schedule a pre-built EventFn (move-assigned into its arena slot).
  /// Used when a handler was parked outside the queue — e.g. cross-shard
  /// control messages staged in a mailbox — and is now being scheduled.
  std::uint64_t schedule(Time t, EventFn&& fn) {
    const std::uint32_t idx = alloc_slot();
    slots_[idx].fn = std::move(fn);
    return push_scheduled(t, idx);
  }

  /// Schedule fn at time t with an explicit tie-break key in place of the
  /// internal insertion sequence. The heap key becomes (t, tiebreak), so
  /// the execution order of same-time events is a pure function of the
  /// caller-supplied keys — independent of the order the schedule calls
  /// happened to arrive in. The sharded simulator keys every shard-local
  /// event by (entity id, per-entity sequence), which is what makes a
  /// fixed-seed run bit-identical at every shard count.
  ///
  /// Caller contract: (t, tiebreak) pairs must be unique among live keyed
  /// events, and a queue should not mix keyed and unkeyed scheduling at
  /// the same timestamp (the internal sequence could collide with a key).
  template <typename F>
  std::uint64_t schedule_keyed(Time t, std::uint64_t tiebreak, F&& fn) {
    const std::uint32_t idx = alloc_slot();
    slots_[idx].fn.assign(std::forward<F>(fn));
    return push_keyed(t, tiebreak, idx);
  }

  std::uint64_t schedule_keyed(Time t, std::uint64_t tiebreak, EventFn&& fn) {
    const std::uint32_t idx = alloc_slot();
    slots_[idx].fn = std::move(fn);
    return push_keyed(t, tiebreak, idx);
  }

  /// Cancel a scheduled event in O(1). Returns false if it already ran,
  /// was already cancelled, or the id is stale (its slot was reused).
  bool cancel(std::uint64_t id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }
  /// Time of the earliest live event. Undefined when empty(). Discards
  /// cancelled tombstones that have surfaced at the top of the heap.
  [[nodiscard]] Time next_time();

  /// Remove and return the earliest live event.
  std::pair<Time, EventFn> pop();

  /// Fused peek+pop for the run loop: if the earliest live event is at or
  /// before `until`, move it into (t_out, fn_out) and return true.
  bool pop_if_at_most(Time until, Time& t_out, EventFn& fn_out);

 private:
  /// Heap entries carry their full ordering key plus the generation stamp
  /// they were scheduled under; an entry whose stamp no longer matches its
  /// slot is a tombstone.
  ///
  /// The (time, seq) lexicographic key is packed into one 128-bit integer
  /// so sift comparisons compile to a branchless cmp/sbb instead of a
  /// data-dependent two-field branch — event times are effectively random,
  /// so the branchy form mispredicts ~50% of the time in the min-child
  /// scan. Requires time >= 0 (the Simulator never goes negative).
  struct HeapEntry {
    unsigned __int128 key = 0;  ///< (time << 64) | seq
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;

    [[nodiscard]] static unsigned __int128 make_key(Time t,
                                                    std::uint64_t seq) {
      return (static_cast<unsigned __int128>(static_cast<std::uint64_t>(t))
              << 64) |
             seq;
    }
    [[nodiscard]] Time time() const {
      return static_cast<Time>(static_cast<std::uint64_t>(key >> 64));
    }
  };

  struct Slot {
    EventFn fn;                    // 56 bytes (48 SBO + vtable pointer)
    std::uint32_t generation = 0;  // -> 64-byte slot, cache-line aligned
  };

  /// Strict ordering: earlier time first, insertion order at equal times.
  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) {
    return a.key < b.key;
  }

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  /// Remove the root entry (live or tombstone) from the heap.
  void pop_root();
  /// Vacate a slot: destroy its handler, bump the generation stamp, and
  /// return it to the free list.
  void retire_slot(std::uint32_t idx) {
    Slot& slot = slots_[idx];
    slot.fn.reset();
    ++slot.generation;
    free_.push_back(idx);
    --live_;
  }

  /// Take a slot from the free list (or grow the arena).
  std::uint32_t alloc_slot() {
    if (free_.empty()) {
      const auto idx = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
      return idx;
    }
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }

  /// Heap insertion half of schedule(); returns the stamped event id.
  std::uint64_t push_scheduled(Time t, std::uint32_t idx) {
    return push_keyed(t, next_seq_++, idx);
  }

  /// Heap insertion with an explicit tie-break key.
  std::uint64_t push_keyed(Time t, std::uint64_t tiebreak,
                           std::uint32_t idx) {
    const std::uint32_t generation = slots_[idx].generation;
    heap_.push_back(HeapEntry{HeapEntry::make_key(t, tiebreak), idx,
                              generation});
    sift_up(heap_.size() - 1);
    ++live_;
    return (static_cast<std::uint64_t>(generation) << 32) | idx;
  }

  std::vector<Slot> slots_;          ///< arena; grows to peak live events
  std::vector<HeapEntry> heap_;      ///< 4-ary min-heap; may hold tombstones
  std::vector<std::uint32_t> free_;  ///< vacated slot indices
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;             ///< scheduled minus (run + cancelled)
};

}  // namespace mars::sim
