#include "sim/simulator.hpp"

#include <cassert>

namespace mars::sim {

void Simulator::run(Time until) {
  // Fused peek+pop: one heap traversal per event instead of a next_time()
  // probe followed by a pop().
  Time t = 0;
  EventFn fn;
  while (queue_.pop_if_at_most(until, t, fn)) {
    assert(t >= now_);
    now_ = t;
    ++executed_;
    fn();
    fn.reset();
  }
  if (now_ < until && until != std::numeric_limits<Time>::max()) {
    now_ = until;
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [t, fn] = queue_.pop();
  assert(t >= now_);
  now_ = t;
  ++executed_;
  fn();
  return true;
}

}  // namespace mars::sim
