#include "sim/simulator.hpp"

#include <cassert>

namespace mars::sim {

std::uint64_t Simulator::schedule_in(Time delay, EventFn fn) {
  assert(delay >= 0);
  return queue_.schedule(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::schedule_at(Time t, EventFn fn) {
  assert(t >= now_);
  return queue_.schedule(t, std::move(fn));
}

void Simulator::run(Time until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    step();
  }
  if (now_ < until && until != std::numeric_limits<Time>::max()) {
    now_ = until;
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [t, fn] = queue_.pop();
  assert(t >= now_);
  now_ = t;
  ++executed_;
  fn();
  return true;
}

}  // namespace mars::sim
