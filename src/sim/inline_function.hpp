#pragma once
// Move-only callable with small-buffer storage for the simulator hot path.
//
// Every scheduled event used to cost a std::function heap allocation; the
// closures the substrate actually schedules (Switch service completions,
// Network link hops, traffic arrivals) capture at most a few pointers and
// ids. InlineFn stores any nothrow-movable callable of up to
// kInlineCapacity bytes in place — zero heap traffic — and falls back to
// the heap only for oversized captures (e.g. control-plane closures that
// carry a whole Notification). Hot-path call sites static_assert
// `event_fn_fits_inline` so a capture that silently grows past the buffer
// fails the build, not the perf budget. See DESIGN.md "Simulator hot
// path".

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mars::sim {

class InlineFn {
 public:
  /// Size contract: 48 bytes holds six pointer-sized captures — enough for
  /// every substrate closure (they capture {this, port}, {this, slot,
  /// switch id}, or one small trace event) with room to grow.
  static constexpr std::size_t kInlineCapacity = 48;
  static constexpr std::size_t kInlineAlign = 16;

  /// True when F is stored in the inline buffer (no heap allocation).
  template <typename F>
  static constexpr bool stores_inline =
      sizeof(F) <= kInlineCapacity && alignof(F) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<F>;

  constexpr InlineFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    emplace(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      relocate_from(other);
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        relocate_from(other);
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Destroy the held callable (if any); leaves the wrapper empty.
  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (vtable_->destroy != nullptr) vtable_->destroy(&storage_);
      vtable_ = nullptr;
    }
  }

  /// Construct a callable directly in this wrapper, replacing any held
  /// one. Used by the scheduler hot path to build the closure in its
  /// final slot instead of relocating it through temporaries.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  void assign(F&& f) {
    reset();
    emplace(std::forward<F>(f));
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  void operator()() { vtable_->invoke(&storage_); }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-construct into dst from src, then destroy src. Null means the
    /// payload is trivially relocatable: a memcpy of the buffer suffices
    /// (every pointer/id-capturing hot-path closure, and the heap-fallback
    /// pointer itself). Keeping the null check inline avoids an indirect
    /// call per move on the scheduler path.
    void (*relocate)(void* dst, void* src) noexcept;
    /// Null means trivially destructible: reset() skips the call entirely.
    void (*destroy)(void*) noexcept;
  };

  void relocate_from(InlineFn& other) noexcept {
    if (vtable_->relocate != nullptr) {
      vtable_->relocate(&storage_, &other.storage_);
    } else {
      std::memcpy(&storage_, &other.storage_, kInlineCapacity);
    }
    other.vtable_ = nullptr;
  }

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (stores_inline<Fn>) {
      ::new (static_cast<void*>(&storage_)) Fn(std::forward<F>(f));
      static constexpr VTable vt{
          [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
          std::is_trivially_copyable_v<Fn>
              ? nullptr
              : +[](void* dst, void* src) noexcept {
                  Fn* s = std::launder(reinterpret_cast<Fn*>(src));
                  ::new (dst) Fn(std::move(*s));
                  s->~Fn();
                },
          std::is_trivially_destructible_v<Fn>
              ? nullptr
              : +[](void* p) noexcept {
                  std::launder(reinterpret_cast<Fn*>(p))->~Fn();
                },
      };
      vtable_ = &vt;
    } else {
      // Oversized capture: one pointer in the buffer, callable on the heap.
      // The pointer relocates by memcpy (null relocate); destroy deletes.
      ::new (static_cast<void*>(&storage_)) Fn*(new Fn(std::forward<F>(f)));
      static constexpr VTable vt{
          [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
          nullptr,
          [](void* p) noexcept {
            delete *std::launder(reinterpret_cast<Fn**>(p));
          },
      };
      vtable_ = &vt;
    }
  }

  alignas(kInlineAlign) std::byte storage_[kInlineCapacity];
  const VTable* vtable_ = nullptr;
};

/// Event callback type used by EventQueue/Simulator.
using EventFn = InlineFn;

/// Compile-time check that a closure runs allocation-free as an event.
template <typename F>
inline constexpr bool event_fn_fits_inline =
    InlineFn::stores_inline<std::remove_cvref_t<F>>;

}  // namespace mars::sim
