#pragma once
// Lane: a per-entity scheduling handle that makes event order a pure
// function of the entity, not of sharding.
//
// Single-queue simulations order same-time events by global insertion
// sequence — a number that depends on which other entities happen to share
// the queue, so it cannot survive repartitioning. A Lane instead keys
// every event it schedules with (entity id << 40 | per-entity sequence):
// an entity always emits the same key stream no matter which shard (or
// how many shards) it runs on, so the sharded simulator replays the exact
// same execution at every shard count (the determinism invariant pinned
// by tests/scenario_determinism_test.cpp).
//
// A Lane can also be "plain" (unkeyed): it forwards to the simulator's
// ordinary insertion-sequence scheduling, byte-identical to pre-shard
// behavior. The legacy single-simulator Network binds plain lanes so the
// historical golden fingerprints are untouched.

#include <cassert>
#include <cstdint>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mars::sim {

class Lane {
 public:
  /// Bits reserved for the per-entity sequence: 2^40 events per entity
  /// (weeks of simulated time for the busiest switch) under 2^24 entities.
  static constexpr int kSeqBits = 40;

  Lane() = default;

  /// A keyed lane for `entity` on `sim` (a shard simulator).
  static Lane keyed(Simulator& sim, std::uint64_t entity) {
    Lane lane;
    lane.sim_ = &sim;
    lane.key_base_ = entity << kSeqBits;
    lane.keyed_ = true;
    return lane;
  }

  /// An unkeyed lane: plain insertion-sequence scheduling on `sim`.
  static Lane plain(Simulator& sim) {
    Lane lane;
    lane.sim_ = &sim;
    return lane;
  }

  [[nodiscard]] bool bound() const { return sim_ != nullptr; }
  [[nodiscard]] bool is_keyed() const { return keyed_; }
  [[nodiscard]] Simulator& simulator() const { return *sim_; }
  [[nodiscard]] Time now() const { return sim_->now(); }

  /// Next tie-break key of this entity's stream (keyed lanes only) — for
  /// events that must leave the lane's own simulator (cross-shard hops
  /// carry their key through a mailbox into the destination queue).
  [[nodiscard]] std::uint64_t next_key() {
    assert(keyed_);
    return key_base_ | seq_++;
  }

  template <typename F>
  void schedule_at(Time t, F&& fn) {
    if (keyed_) {
      sim_->schedule_at_keyed(t, key_base_ | seq_++, std::forward<F>(fn));
    } else {
      sim_->schedule_at(t, std::forward<F>(fn));
    }
  }

  template <typename F>
  void schedule_in(Time delay, F&& fn) {
    schedule_at(sim_->now() + delay, std::forward<F>(fn));
  }

 private:
  Simulator* sim_ = nullptr;
  std::uint64_t key_base_ = 0;
  std::uint64_t seq_ = 0;
  bool keyed_ = false;
};

}  // namespace mars::sim
