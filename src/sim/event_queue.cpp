#include "sim/event_queue.hpp"

#include <cassert>

namespace mars::sim {

// 4-ary layout: children of pos are 4*pos+1 .. 4*pos+4, parent (pos-1)/4.
// The wider fan-out halves tree depth versus a binary heap, and sift
// compares stream through the contiguous heap array only.

void EventQueue::sift_up(std::size_t pos) {
  const HeapEntry moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!before(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = moving;
}

void EventQueue::sift_down(std::size_t pos) {
  // Bottom-up variant: the displaced entry is almost always heap-bottom
  // material (pop_root moves the last leaf to the root), so percolate the
  // hole to a leaf along the min-child path without testing `moving` at
  // each level, then bubble `moving` back up the same path. This trades
  // the per-level "is moving smaller?" compare for a short upward walk
  // that usually terminates immediately.
  const std::size_t n = heap_.size();
  const HeapEntry moving = heap_[pos];
  std::size_t hole = pos;
  for (;;) {
    const std::size_t first_child = 4 * hole + 1;
    if (first_child >= n) break;
    std::size_t best;
    if (first_child + 3 < n) {
      // Full fan-out (the common case): branchless cmov tournament over
      // the four children. Keys are unique, so bracket order is moot.
      const std::size_t c0 = first_child;
      const std::size_t b01 = before(heap_[c0 + 1], heap_[c0]) ? c0 + 1 : c0;
      const std::size_t b23 =
          before(heap_[c0 + 3], heap_[c0 + 2]) ? c0 + 3 : c0 + 2;
      best = before(heap_[b23], heap_[b01]) ? b23 : b01;
    } else {
      const std::size_t last_child = n - 1;
      best = first_child;
      for (std::size_t c = first_child + 1; c <= last_child; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  while (hole > pos) {
    const std::size_t parent = (hole - 1) / 4;
    if (!before(moving, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = moving;
}

void EventQueue::pop_root() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = last;
    sift_down(0);
  }
}




bool EventQueue::cancel(std::uint64_t id) {
  const auto idx = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (idx >= slots_.size()) return false;
  Slot& slot = slots_[idx];
  if (slot.generation != generation) {
    return false;  // already ran, already cancelled, or stale id
  }
  // The heap entry stays behind as a tombstone; pop()/next_time() discard
  // it when it surfaces, recognised by the stale generation stamp.
  retire_slot(idx);
  return true;
}

Time EventQueue::next_time() {
  for (;;) {
    assert(!heap_.empty());
    const HeapEntry& top = heap_.front();
    if (slots_[top.slot].generation == top.generation) return top.time();
    pop_root();
  }
}

std::pair<Time, EventFn> EventQueue::pop() {
  for (;;) {
    assert(!heap_.empty());
    const HeapEntry top = heap_.front();
    pop_root();
    Slot& slot = slots_[top.slot];
    if (slot.generation != top.generation) continue;  // tombstone
    std::pair<Time, EventFn> out{top.time(), std::move(slot.fn)};
    retire_slot(top.slot);
    return out;
  }
}

bool EventQueue::pop_if_at_most(Time until, Time& t_out, EventFn& fn_out) {
  for (;;) {
    if (live_ == 0) return false;
    const HeapEntry top = heap_.front();
    Slot& slot = slots_[top.slot];
    if (slot.generation != top.generation) {  // tombstone
      pop_root();
      continue;
    }
    if (top.time() > until) return false;
    pop_root();
    t_out = top.time();
    fn_out = std::move(slot.fn);
    retire_slot(top.slot);
    return true;
  }
}

}  // namespace mars::sim
