#include "sim/event_queue.hpp"

#include <cassert>

namespace mars::sim {

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && later(heap_[smallest], heap_[l])) smallest = l;
    if (r < n && later(heap_[smallest], heap_[r])) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

std::uint64_t EventQueue::schedule(Time t, EventFn fn) {
  const std::uint64_t id = next_seq_++;
  heap_.push_back(Entry{t, id, std::move(fn)});
  sift_up(heap_.size() - 1);
  pending_.insert(id);
  ++live_;
  return id;
}

bool EventQueue::cancel(std::uint64_t id) {
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);
  --live_;
  return true;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && cancelled_.count(heap_.front().seq)) {
    cancelled_.erase(heap_.front().seq);
    std::swap(heap_.front(), heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

Time EventQueue::next_time() {
  drop_dead_top();
  assert(!heap_.empty());
  return heap_.front().time;
}

std::pair<Time, EventFn> EventQueue::pop() {
  drop_dead_top();
  assert(!heap_.empty());
  Entry top = std::move(heap_.front());
  std::swap(heap_.front(), heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  pending_.erase(top.seq);
  --live_;
  return {top.time, std::move(top.fn)};
}

}  // namespace mars::sim
