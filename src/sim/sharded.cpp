#include "sim/sharded.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <tuple>
#include <utility>

namespace mars::sim {

namespace {
constexpr Time kInf = std::numeric_limits<Time>::max();
}  // namespace

ShardedSimulator::ShardedSimulator(parallel::ThreadPool& pool,
                                   ShardedConfig config)
    : config_(config), pool_(&pool),
      shards_(static_cast<std::size_t>(std::max(config.shards, 1))) {
  assert(config_.lookahead >= 1 && "zero lookahead cannot make progress");
  assert(config_.control_latency >= config_.lookahead &&
         "control messages must not undercut the conservative window");
}

void ShardedSimulator::post_control(int shard, Time at, std::uint64_t key,
                                    EventFn fn) {
  shards_[static_cast<std::size_t>(shard)].outbox.push_back(
      ControlMail{at, key, std::move(fn)});
}

void ShardedSimulator::drain_control_outboxes() {
  control_staging_.clear();
  for (auto& s : shards_) {
    for (auto& mail : s.outbox) {
      control_staging_.push_back(std::move(mail));
    }
    s.outbox.clear();
  }
  if (control_staging_.empty()) return;
  // (at, key) pairs are unique — the key embeds the sender's entity id —
  // so this order is total and independent of shard layout and of the
  // outbox visit order above.
  std::sort(control_staging_.begin(), control_staging_.end(),
            [](const ControlMail& a, const ControlMail& b) {
              return std::tie(a.at, a.key) < std::tie(b.at, b.key);
            });
  for (auto& mail : control_staging_) {
    global_.schedule_at(mail.at, std::move(mail.fn));
  }
  control_staging_.clear();
}

bool ShardedSimulator::plan_window(Time until) {
  if (drain_hook_) drain_hook_();
  drain_control_outboxes();
  for (;;) {
    Time t_l = kInf;
    for (auto& s : shards_) {
      if (const auto t = s.sim.next_event_time()) t_l = std::min(t_l, *t);
    }
    const Time t_g = global_.next_event_time().value_or(kInf);
    if (std::min(t_l, t_g) > until) return false;

    if (t_g <= t_l) {
      // Global events run BEFORE any shard event at the same time: a
      // threshold write or fault injection at virtual time T is visible
      // to exactly the shard events at t >= T, independent of sharding.
      // They run here, between windows, with every shard quiescent, so
      // they may touch shard state (schedule onto shard lanes, flip
      // switch fault knobs) directly.
      ++sync_.global_rounds;
      global_.run(t_g);
      continue;
    }

    // Next parallel window: every shard executes events in [.., W).
    // Capped by the next global event (rule above), by end-of-run
    // (until + 1 so events at exactly `until` still execute, matching
    // Simulator::run), and by the conservative lookahead bound.
    Time w = until + 1;
    bool stalled = false;
    bool capped_by_global = false;
    if (t_l + config_.lookahead < w) {
      w = t_l + config_.lookahead;
      stalled = true;
    }
    if (t_g < w) {
      w = t_g;
      stalled = false;
      capped_by_global = true;
    }
    window_ = w;
    ++sync_.windows;
    if (stalled) {
      ++sync_.lookahead_stalls;
    } else if (capped_by_global) {
      ++sync_.windows_capped_by_global;
    } else {
      ++sync_.windows_to_end;
    }
    return true;
  }
}

void ShardedSimulator::run(Time until) {
  if (plan_window(until)) {
    pool_->run_epochs(
        shards_.size(),
        [this](std::size_t lane, std::uint64_t /*epoch*/) {
          Shard& s = shards_[lane];
          // Events strictly below window_ are independent across shards
          // (nothing scheduled at >= T_l can reach another shard before
          // T_l + lookahead >= window_).
          const std::uint64_t before = s.sim.events_executed();
          s.sim.run(window_ - 1);
          const std::uint64_t ran = s.sim.events_executed() - before;
          ++s.stats.windows;
          if (ran > 0) ++s.stats.busy_windows;
          s.stats.window_events += ran;
          s.stats.max_window_events = std::max(s.stats.max_window_events, ran);
          ++s.stats.window_event_hist[ShardStats::hist_bucket(ran)];
        },
        [this, until](std::uint64_t /*epoch*/) {
          return plan_window(until);
        });
  }
  // Advance every clock to `until` exactly like Simulator::run does on an
  // empty queue (pending events, if any, are all beyond `until`).
  for (auto& s : shards_) s.sim.run(until);
  global_.run(until);
}

std::uint64_t ShardedSimulator::events_executed() const {
  std::uint64_t total = global_.events_executed();
  for (const auto& s : shards_) total += s.sim.events_executed();
  return total;
}

}  // namespace mars::sim
