#pragma once
// Discrete-event simulation driver.
//
// This substrate stands in for the paper's Mininet/BMv2 environment: every
// network component schedules callbacks here, and the run loop advances
// virtual time monotonically.

#include <cassert>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace mars::sim {

class Simulator {
 public:
  /// Current virtual time. Starts at 0.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule fn at now() + delay (delay may be 0; never negative).
  /// Forwards the raw callable so it is built in place in the event arena.
  template <typename F>
  std::uint64_t schedule_in(Time delay, F&& fn) {
    assert(delay >= 0);
    return queue_.schedule(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule fn at absolute time t >= now().
  template <typename F>
  std::uint64_t schedule_at(Time t, F&& fn) {
    assert(t >= now_);
    return queue_.schedule(t, std::forward<F>(fn));
  }

  /// Schedule a pre-built EventFn (see EventQueue::schedule overload).
  std::uint64_t schedule_at(Time t, EventFn&& fn) {
    assert(t >= now_);
    return queue_.schedule(t, std::move(fn));
  }

  /// Schedule with an explicit same-time tie-break key — the sharded
  /// engine's determinism primitive (see EventQueue::schedule_keyed).
  template <typename F>
  std::uint64_t schedule_at_keyed(Time t, std::uint64_t tiebreak, F&& fn) {
    assert(t >= now_);
    return queue_.schedule_keyed(t, tiebreak, std::forward<F>(fn));
  }

  std::uint64_t schedule_at_keyed(Time t, std::uint64_t tiebreak,
                                  EventFn&& fn) {
    assert(t >= now_);
    return queue_.schedule_keyed(t, tiebreak, std::move(fn));
  }

  bool cancel(std::uint64_t id) { return queue_.cancel(id); }

  /// Run until the event queue is empty or `until` is passed.
  /// Events at exactly `until` still execute.
  void run(Time until = std::numeric_limits<Time>::max());

  /// Execute exactly one event if any remain. Returns false when drained.
  bool step();

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] bool pending() const { return !queue_.empty(); }
  /// Number of live scheduled events (the obs event-queue-depth gauge).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Time of the earliest pending event, if any. Non-const: surfacing the
  /// answer may discard cancelled tombstones at the top of the heap. The
  /// sharded driver polls this per window to bound conservative progress.
  [[nodiscard]] std::optional<Time> next_event_time() {
    if (queue_.empty()) return std::nullopt;
    return queue_.next_time();
  }

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace mars::sim
