#pragma once
// Discrete-event simulation driver.
//
// This substrate stands in for the paper's Mininet/BMv2 environment: every
// network component schedules callbacks here, and the run loop advances
// virtual time monotonically.

#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace mars::sim {

class Simulator {
 public:
  /// Current virtual time. Starts at 0.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule fn at now() + delay (delay may be 0; never negative).
  std::uint64_t schedule_in(Time delay, EventFn fn);

  /// Schedule fn at absolute time t >= now().
  std::uint64_t schedule_at(Time t, EventFn fn);

  bool cancel(std::uint64_t id) { return queue_.cancel(id); }

  /// Run until the event queue is empty or `until` is passed.
  /// Events at exactly `until` still execute.
  void run(Time until = std::numeric_limits<Time>::max());

  /// Execute exactly one event if any remain. Returns false when drained.
  bool step();

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] bool pending() const { return !queue_.empty(); }

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace mars::sim
