#pragma once
// Sharded discrete-event simulation with conservative lookahead.
//
// The topology is partitioned into shards; each shard owns a Simulator
// (its own event queue, its own virtual clock) and runs on the shared
// thread pool. A separate "global" Simulator hosts everything that spans
// shards — controller polls, samplers, fault injections, cross-shard
// control messages — and runs single-threaded between windows, when every
// shard is quiescent.
//
// Window protocol (per barrier round, single-threaded):
//   1. drain hooks move cross-shard traffic (network mailboxes) and the
//      per-shard control outboxes into their destination queues;
//   2. T_l = min over shards of next-event time, T_g = global next-event;
//   3. if min(T_l, T_g) > until: done;
//   4. if T_g <= T_l: run the global queue up to T_g and recompute
//      (global events — threshold writes, fault lambdas, burst starts —
//      observe and mutate shard state at an exact virtual time, before
//      any shard event at or after it);
//   5. else the next window is W = min(T_l + lookahead, T_g, until + 1)
//      and every shard runs events strictly below W in parallel.
//
// The lookahead is the minimum latency of any shard-crossing edge (the
// smallest boundary-link propagation delay and the shard-to-controller
// control latency): an event at t >= T_l can only influence another shard
// at or after t + lookahead >= W, so everything below W is independent
// across shards and the parallel window is safe — the classic
// conservative PDES bound (Chandy–Misra), degenerated to a barrier
// because fat-tree shards are all mutually adjacent through the core.
//
// Determinism does NOT come from the window placement (which depends on
// shard count) but from event keys: every shard-local event is keyed
// (entity id, per-entity seq) via sim::Lane, so each queue pops an
// identical sequence no matter how entities are grouped; mailbox drains
// only move (time, key, fn) tuples between queues, and control-outbox
// drains sort by (time, key) before scheduling. Fixed seed => the same
// execution, bit for bit, at every shard count.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mars::sim {

struct ShardedConfig {
  int shards = 1;
  /// Conservative window bound: no cross-shard influence travels faster
  /// than this. Must be >= 1 ns or the window loop cannot make progress,
  /// and <= every boundary-link propagation delay and the control latency
  /// or a message could arrive inside an already-running window.
  Time lookahead = 1 * kMicrosecond;
  /// Virtual-time delay of a shard -> global control message (the wire
  /// latency a data-plane notification pays to reach the controller).
  Time control_latency = 1 * kMillisecond;
};

/// Per-shard accounting, exposed as obs gauges per shard. The occupancy
/// fields are the PDES profiler: how much real work each shard found in
/// its parallel windows (an idle shard burns a barrier round for nothing,
/// so low busy-fraction on one shard means the partition is lopsided).
struct ShardStats {
  static constexpr std::size_t kHistBuckets = 16;

  std::uint64_t windows = 0;       ///< parallel windows this shard ran in
  std::uint64_t busy_windows = 0;  ///< windows with >= 1 event executed
  std::uint64_t window_events = 0;      ///< events executed inside windows
  std::uint64_t max_window_events = 0;  ///< densest single window
  /// Events-per-window histogram, log2 buckets: [0] counts empty windows,
  /// [k>0] counts windows with event count in [2^(k-1), 2^k). The last
  /// bucket absorbs the tail.
  std::array<std::uint64_t, kHistBuckets> window_event_hist{};

  /// Log2 bucket index for one window's event count.
  [[nodiscard]] static std::size_t hist_bucket(std::uint64_t events) {
    std::size_t b = 0;
    while (events > 0 && b + 1 < kHistBuckets) {
      events >>= 1;
      ++b;
    }
    return b;
  }
  /// Fraction of this shard's windows that executed at least one event.
  [[nodiscard]] double busy_fraction() const {
    return windows == 0
               ? 0.0
               : static_cast<double>(busy_windows) /
                     static_cast<double>(windows);
  }
};

/// Synchronization accounting for the whole run, with every window's end
/// attributed to exactly one cap: the lookahead bound (a stall — shards
/// wanted to run further), the next global event, or end-of-run.
struct ShardSyncStats {
  std::uint64_t windows = 0;            ///< parallel windows executed
  std::uint64_t global_rounds = 0;      ///< global-queue sub-runs
  std::uint64_t lookahead_stalls = 0;   ///< windows clipped by lookahead
  std::uint64_t windows_capped_by_global = 0;  ///< clipped by a global event
  std::uint64_t windows_to_end = 0;     ///< ran unclipped to end-of-run
};

class ShardedSimulator {
 public:
  ShardedSimulator(parallel::ThreadPool& pool, ShardedConfig config);

  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] Simulator& shard(int i) { return shards_[i].sim; }
  /// The single-threaded domain: control plane, samplers, fault lambdas.
  /// Its events run only between windows, when every shard is quiescent,
  /// so they may touch any shard's state directly.
  [[nodiscard]] Simulator& global() { return global_; }
  [[nodiscard]] Time lookahead() const { return config_.lookahead; }
  [[nodiscard]] Time control_latency() const {
    return config_.control_latency;
  }

  /// Barrier hook, called single-threaded at the start of every round
  /// before next-event times are read. The network drains its cross-shard
  /// packet mailboxes here.
  void set_drain_hook(std::function<void()> hook) {
    drain_hook_ = std::move(hook);
  }

  /// Post a control message from shard code (runs on the shard's thread
  /// during a window) to the global domain. `at` must be >= the current
  /// window end (guaranteed when at = now + control latency with control
  /// latency >= lookahead); `key` orders same-time messages (use the
  /// sender's lane key). Staged wait-free in the shard's outbox; drained,
  /// sorted by (at, key), and scheduled at the next barrier.
  void post_control(int shard, Time at, std::uint64_t key, EventFn fn);

  /// Run every queue to `until` (inclusive, like Simulator::run). Uses
  /// the pool's run_epochs loop; the pool must be otherwise idle.
  void run(Time until);

  /// Sum of events executed across all shard queues and the global queue.
  /// Shard-count-invariant for a fixed seed (the determinism fingerprint).
  [[nodiscard]] std::uint64_t events_executed() const;

  [[nodiscard]] const ShardStats& shard_stats(int i) const {
    return shards_[i].stats;
  }
  [[nodiscard]] const ShardSyncStats& sync_stats() const { return sync_; }

 private:
  struct ControlMail {
    Time at = 0;
    std::uint64_t key = 0;
    EventFn fn;
  };

  /// One shard, padded so adjacent shards' hot state (event queues,
  /// outboxes) never share a cache line across worker threads.
  struct alignas(64) Shard {
    Simulator sim;
    std::vector<ControlMail> outbox;
    ShardStats stats;
  };

  /// Single-threaded planning step: drain, advance the global queue, and
  /// choose the next window. Returns false when nothing remains <= until.
  bool plan_window(Time until);
  void drain_control_outboxes();

  ShardedConfig config_;
  parallel::ThreadPool* pool_;
  std::vector<Shard> shards_;
  Simulator global_;
  std::function<void()> drain_hook_;
  std::vector<ControlMail> control_staging_;  ///< reused sort buffer
  Time window_ = 0;  ///< exclusive end of the current parallel window
  ShardSyncStats sync_;
};

}  // namespace mars::sim
