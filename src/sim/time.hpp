#pragma once
// Simulation time: 64-bit signed nanoseconds.

#include <cstdint>

namespace mars::sim {

/// Simulation timestamp / duration in nanoseconds.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// Convert a Time to floating-point seconds (for reporting only).
[[nodiscard]] constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Convert a Time to floating-point milliseconds (for reporting only).
[[nodiscard]] constexpr double to_millis(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

namespace literals {
constexpr Time operator""_ns(unsigned long long v) {
  return static_cast<Time>(v);
}
constexpr Time operator""_us(unsigned long long v) {
  return static_cast<Time>(v) * kMicrosecond;
}
constexpr Time operator""_ms(unsigned long long v) {
  return static_cast<Time>(v) * kMillisecond;
}
constexpr Time operator""_s(unsigned long long v) {
  return static_cast<Time>(v) * kSecond;
}
}  // namespace literals

}  // namespace mars::sim
