#include "telemetry/tables.hpp"

#include <algorithm>

namespace mars::telemetry {

void IngressTable::roll(FlowEntry& e, EpochId epoch) const {
  if (epoch == e.epoch) return;
  // Keep the immediately preceding epoch's count; anything older is stale.
  e.previous_count = (epoch == e.epoch + 1) ? e.current_count : 0;
  e.previous_epoch = epoch - 1;
  e.epoch = epoch;
  e.current_count = 0;
}

void IngressTable::count_packet(const net::FlowId& flow, sim::Time now) {
  FlowEntry& e = flows_[flow];
  roll(e, epoch_of(now, period_));
  ++e.current_count;
}

bool IngressTable::try_mark_telemetry(const net::FlowId& flow,
                                      sim::Time now) {
  FlowEntry& e = flows_[flow];
  const EpochId epoch = epoch_of(now, period_);
  roll(e, epoch);
  if (e.telemetry_marked && e.last_telemetry_epoch == epoch) return false;
  e.telemetry_marked = true;
  e.last_telemetry_epoch = epoch;
  e.last_telemetry_time = now;
  return true;
}

std::uint32_t IngressTable::last_epoch_count(const net::FlowId& flow,
                                             sim::Time now) const {
  const auto it = flows_.find(flow);
  if (it == flows_.end()) return 0;
  const FlowEntry& e = it->second;
  const EpochId epoch = epoch_of(now, period_);
  if (e.epoch == epoch) {
    return (e.previous_epoch == epoch - 1) ? e.previous_count : 0;
  }
  if (e.epoch == epoch - 1) return e.current_count;
  return 0;
}

std::uint32_t IngressTable::current_epoch_count(const net::FlowId& flow,
                                                sim::Time now) const {
  const auto it = flows_.find(flow);
  if (it == flows_.end()) return 0;
  const FlowEntry& e = it->second;
  return (e.epoch == epoch_of(now, period_)) ? e.current_count : 0;
}

void EgressTable::roll(Entry& e, EpochId epoch) const {
  if (epoch == e.epoch) return;
  e.previous = (epoch == e.epoch + 1) ? e.current : PathCounters{};
  e.previous_epoch = epoch - 1;
  e.epoch = epoch;
  e.current = PathCounters{};
}

void EgressTable::count_packet(std::uint32_t path_id, const net::FlowId& flow,
                               std::uint32_t bytes, sim::Time now) {
  Entry& e = entries_[Key{path_id, flow}];
  roll(e, epoch_of(now, period_));
  ++e.current.packets;
  e.current.bytes += bytes;
}

EgressTable::PathCounters EgressTable::current(std::uint32_t path_id,
                                               const net::FlowId& flow,
                                               sim::Time now) const {
  const auto it = entries_.find(Key{path_id, flow});
  if (it == entries_.end()) return {};
  const Entry& e = it->second;
  return (e.epoch == epoch_of(now, period_)) ? e.current : PathCounters{};
}

EgressTable::PathCounters EgressTable::previous(std::uint32_t path_id,
                                                const net::FlowId& flow,
                                                sim::Time now) const {
  const auto it = entries_.find(Key{path_id, flow});
  if (it == entries_.end()) return {};
  const Entry& e = it->second;
  const EpochId epoch = epoch_of(now, period_);
  if (e.epoch == epoch && e.previous_epoch == epoch - 1) return e.previous;
  if (e.epoch == epoch - 1) return e.current;
  return {};
}

std::uint32_t EgressTable::flow_current_packets(const net::FlowId& flow,
                                                sim::Time now) const {
  std::uint32_t total = 0;
  const EpochId epoch = epoch_of(now, period_);
  for (const auto& [key, e] : entries_) {
    if (key.flow == flow && e.epoch == epoch) total += e.current.packets;
  }
  return total;
}

std::vector<EgressTable::FlowPathCount> EgressTable::flow_path_counts(
    const net::FlowId& flow, sim::Time now) const {
  const EpochId epoch = epoch_of(now, period_);
  std::vector<FlowPathCount> out;
  for (const auto& [key, e] : entries_) {
    if (key.flow != flow) continue;
    std::uint32_t packets = 0;
    if (e.epoch == epoch) {
      packets += e.current.packets;
      if (e.previous_epoch == epoch - 1) packets += e.previous.packets;
    } else if (e.epoch == epoch - 1) {
      packets += e.current.packets;
    }
    if (packets > 0) out.push_back(FlowPathCount{key.path_id, packets});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.path_id < b.path_id;
  });
  return out;
}

std::uint32_t EgressTable::flow_previous_packets(const net::FlowId& flow,
                                                 sim::Time now) const {
  std::uint32_t total = 0;
  const EpochId epoch = epoch_of(now, period_);
  for (const auto& [key, e] : entries_) {
    if (key.flow != flow) continue;
    if (e.epoch == epoch && e.previous_epoch == epoch - 1) {
      total += e.previous.packets;
    } else if (e.epoch == epoch - 1) {
      total += e.current.packets;
    }
  }
  return total;
}

}  // namespace mars::telemetry
