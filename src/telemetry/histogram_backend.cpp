#include "telemetry/histogram_backend.hpp"

#include <algorithm>

namespace mars::telemetry {

HistogramBackend::HistogramBackend(HistogramBackendConfig config,
                                   std::size_t switch_count,
                                   sim::Time epoch_period,
                                   std::size_t ring_capacity)
    : config_(config), epoch_period_(epoch_period),
      digest_capacity_(config.digest_capacity > 0 ? config.digest_capacity
                                                  : ring_capacity),
      quantizer_(config.sub_bucket_bits, config.buckets) {
  state_.reserve(switch_count);
  for (std::size_t i = 0; i < switch_count; ++i) {
    state_.emplace_back(config_.sub_bucket_bits, config_.buckets,
                        digest_capacity_, config_.trigger_enter,
                        config_.trigger_exit);
  }
}

std::uint32_t HistogramBackend::on_hop_egress(net::SwitchContext& ctx,
                                              const net::Packet& pkt,
                                              net::PortId out,
                                              sim::Time hop_latency) {
  SwitchSlice& st = state_[ctx.id];
  auto [it, inserted] = st.ports.try_emplace(out, config_.sub_bucket_bits,
                                             config_.buckets);
  it->second.latency.add(
      static_cast<std::uint64_t>(std::max<sim::Time>(hop_latency, 0)) /
      static_cast<std::uint64_t>(sim::kMicrosecond));
  std::uint32_t bytes = pkt.has_path_id ? 1u : 0u;
  if (pkt.telemetry) bytes += config_.marker_bytes;
  st.counters.inband_bytes += bytes;
  return bytes;
}

void HistogramBackend::on_hop_enqueue(net::SwitchContext& ctx,
                                      const net::Packet& /*pkt*/,
                                      net::PortId out,
                                      std::uint32_t queue_depth) {
  SwitchSlice& st = state_[ctx.id];
  auto [it, inserted] = st.ports.try_emplace(out, config_.sub_bucket_bits,
                                             config_.buckets);
  it->second.queue.add(queue_depth);
}

sim::Time HistogramBackend::quantize_latency(sim::Time latency) const {
  if (latency <= 0) return 0;
  const auto us = static_cast<std::uint64_t>(latency) /
                  static_cast<std::uint64_t>(sim::kMicrosecond);
  std::size_t bucket = quantizer_.bucket_of(us);
  if (bucket >= config_.buckets) bucket = config_.buckets - 1;
  return static_cast<sim::Time>(quantizer_.bucket_floor(bucket)) *
         sim::kMicrosecond;
}

void HistogramBackend::on_sink_record(net::SwitchContext& ctx,
                                      const net::Packet& /*pkt*/,
                                      const RtRecord& rec) {
  SwitchSlice& st = state_[ctx.id];
  Digest& d = st.live[rec.flow];
  d.last = rec;
  d.max_latency = std::max(d.max_latency, rec.latency);
  d.max_gap = std::max(d.max_gap, rec.epoch_gap);
  ++d.merged;

  // Trigger signal: fraction of this epoch's delivered telemetry
  // latencies above the tail bound.
  st.sink_latency.add(
      static_cast<std::uint64_t>(std::max<sim::Time>(rec.latency, 0)) /
      static_cast<std::uint64_t>(sim::kMicrosecond));
  const double tail = st.sink_latency.fraction_above(
      static_cast<std::uint64_t>(config_.tail_latency) /
      static_cast<std::uint64_t>(sim::kMicrosecond));
  if (st.detector.update(tail)) {
    ++st.counters.triggers;
    // Rising edge: make the anomalous evidence drainable now instead of
    // at the next rollover.
    seal_live(st);
  }
}

RtRecord HistogramBackend::to_record(const Digest& d) const {
  RtRecord rec = d.last;
  rec.latency = quantize_latency(d.max_latency);
  // Keep the drained record self-consistent (and past the controller's
  // plausibility check): latency must equal sink - source exactly.
  rec.source_timestamp = rec.sink_timestamp - rec.latency;
  // Queue depths stay in the switch histograms; the digest does not carry
  // them — the backend's deliberate accuracy/bandwidth trade.
  rec.total_queue_depth = 0;
  rec.epoch_gap = d.max_gap;
  return rec;
}

void HistogramBackend::seal_live(SwitchSlice& st) {
  // std::map order: digests seal sorted by flow, deterministically.
  for (const auto& [flow, digest] : st.live) {
    st.sealed.push(to_record(digest));
    ++st.counters.records;
  }
  st.live.clear();
}

void HistogramBackend::on_epoch_rollover(net::SwitchId sw, EpochId /*epoch*/,
                                         sim::Time /*now*/) {
  SwitchSlice& st = state_[sw];
  ++st.counters.epochs;
  seal_live(st);
  // In-switch registers reset each epoch (the rollover is the register
  // swap a real pipeline performs).
  for (auto& [port, hists] : st.ports) {
    hists.latency.clear();
    hists.queue.clear();
  }
  st.sink_latency.clear();
}

std::vector<RtRecord> HistogramBackend::drain(net::SwitchId sw) const {
  const SwitchSlice& st = state_[sw];
  std::vector<RtRecord> out = st.sealed.snapshot();
  // Register-read semantics: the epoch in progress is readable too.
  out.reserve(out.size() + st.live.size());
  for (const auto& [flow, digest] : st.live) {
    out.push_back(to_record(digest));
  }
  return out;
}

std::size_t HistogramBackend::store_size(net::SwitchId sw) const {
  return state_[sw].sealed.size() + state_[sw].live.size();
}

BackendCounters HistogramBackend::counters() const {
  BackendCounters total;
  for (const SwitchSlice& st : state_) {
    total.inband_bytes += st.counters.inband_bytes;
    total.records += st.counters.records;
    total.epochs += st.counters.epochs;
    total.triggers += st.counters.triggers;
  }
  return total;
}

const util::LogLinearHistogram* HistogramBackend::port_latency_hist(
    net::SwitchId sw, net::PortId port) const {
  const auto it = state_[sw].ports.find(port);
  return it != state_[sw].ports.end() ? &it->second.latency : nullptr;
}

const util::LogLinearHistogram* HistogramBackend::port_queue_hist(
    net::SwitchId sw, net::PortId port) const {
  const auto it = state_[sw].ports.find(port);
  return it != state_[sw].ports.end() ? &it->second.queue : nullptr;
}

}  // namespace mars::telemetry
