#include "telemetry/int_md_backend.hpp"

namespace mars::telemetry {

IntMdBackend::IntMdBackend(IntMdConfig config, std::size_t switch_count,
                           std::size_t ring_capacity)
    : config_(config), ring_capacity_(ring_capacity) {
  state_.reserve(switch_count);
  for (std::size_t i = 0; i < switch_count; ++i) {
    state_.emplace_back(ring_capacity);
  }
}

void IntMdBackend::on_marked(net::SwitchContext& /*ctx*/,
                             const net::Packet& pkt) {
  // Optionally thin the pipeline's marking further (classic INT deploys
  // sample every packet; sample_every > 1 models a lighter config).
  if (config_.sample_every > 1 &&
      (sample_counter_++ % config_.sample_every) != 0) {
    return;
  }
  in_flight_.try_emplace(pkt.id);
}

void IntMdBackend::on_hop_enqueue(net::SwitchContext& /*ctx*/,
                                  const net::Packet& pkt, net::PortId /*out*/,
                                  std::uint32_t queue_depth) {
  const auto it = in_flight_.find(pkt.id);
  if (it == in_flight_.end()) return;
  it->second.pending_queue_depth = queue_depth;
}

std::uint32_t IntMdBackend::on_hop_egress(net::SwitchContext& ctx,
                                          const net::Packet& pkt,
                                          net::PortId out,
                                          sim::Time hop_latency) {
  // Every MARS packet still carries the PathID byte; stack-bearing packets
  // add shim + one entry per recorded hop across this link.
  std::uint32_t bytes = pkt.has_path_id ? 1u : 0u;
  const auto it = in_flight_.find(pkt.id);
  if (it != in_flight_.end()) {
    InFlight& state = it->second;
    if (state.hops.size() < config_.max_hops) {
      state.hops.push_back(IntMdHop{ctx.id, pkt.ingress_port, out, hop_latency,
                                    state.pending_queue_depth});
    }
    bytes += config_.shim_bytes +
             static_cast<std::uint32_t>(state.hops.size()) * IntMdHop::kWireBytes;
  }
  state_[ctx.id].counters.inband_bytes += bytes;
  return bytes;
}

void IntMdBackend::on_drop(net::SwitchContext& /*ctx*/,
                           const net::Packet& pkt) {
  in_flight_.erase(pkt.id);
}

void IntMdBackend::on_sink_record(net::SwitchContext& ctx,
                                  const net::Packet& pkt,
                                  const RtRecord& rec) {
  SwitchSlice& st = state_[ctx.id];
  StoredRecord stored;
  stored.rec = rec;
  if (const auto it = in_flight_.find(pkt.id); it != in_flight_.end()) {
    stored.hops = std::move(it->second.hops);
    // The sink's own (queue-less) hop, as the spec's sink behavior.
    stored.hops.push_back(
        IntMdHop{ctx.id, pkt.ingress_port, net::kHostPort, 0, 0});
    in_flight_.erase(it);
  }
  st.ring.push(std::move(stored));
  ++st.counters.records;
}

void IntMdBackend::on_epoch_rollover(net::SwitchId sw, EpochId /*epoch*/,
                                     sim::Time /*now*/) {
  ++state_[sw].counters.epochs;
}

std::vector<RtRecord> IntMdBackend::drain(net::SwitchId sw) const {
  std::vector<RtRecord> out;
  const auto& ring = state_[sw].ring;
  out.reserve(ring.size());
  ring.for_each([&](const StoredRecord& s) { out.push_back(s.rec); });
  return out;
}

std::size_t IntMdBackend::store_size(net::SwitchId sw) const {
  return state_[sw].ring.size();
}

BackendCounters IntMdBackend::counters() const {
  BackendCounters total;
  for (const SwitchSlice& st : state_) {
    total.inband_bytes += st.counters.inband_bytes;
    total.records += st.counters.records;
    total.epochs += st.counters.epochs;
    total.triggers += st.counters.triggers;
  }
  return total;
}

}  // namespace mars::telemetry
