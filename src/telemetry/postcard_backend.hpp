#pragma once
// The paper's export mode: every delivered telemetry packet becomes one
// RtRecord in the sink switch's Ring Table; in-band cost is the packet's
// actual monitoring overhead (PathID byte + 11-byte INT header on marked
// packets). This backend is the refactor's identity element — drains,
// byte accounting, and ring occupancy are bit-identical to the
// pre-backend pipeline.

#include <cstdint>
#include <vector>

#include "telemetry/backend.hpp"

namespace mars::telemetry {

class PostcardBackend final : public TelemetryBackend {
 public:
  PostcardBackend(std::size_t switch_count, std::size_t ring_capacity);

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kPostcard;
  }

  void on_marked(net::SwitchContext& ctx, const net::Packet& pkt) override;
  [[nodiscard]] std::uint32_t on_hop_egress(net::SwitchContext& ctx,
                                            const net::Packet& pkt,
                                            net::PortId out,
                                            sim::Time hop_latency) override;
  void on_sink_record(net::SwitchContext& ctx, const net::Packet& pkt,
                      const RtRecord& rec) override;
  void on_epoch_rollover(net::SwitchId sw, EpochId epoch,
                         sim::Time now) override;

  [[nodiscard]] std::vector<RtRecord> drain(net::SwitchId sw) const override;
  [[nodiscard]] std::uint32_t record_wire_bytes() const override {
    return RtRecord::kWireBytes;
  }
  [[nodiscard]] std::size_t store_size(net::SwitchId sw) const override;
  [[nodiscard]] std::size_t store_capacity() const override {
    return ring_capacity_;
  }
  [[nodiscard]] BackendCounters counters() const override;

  /// Direct Ring Table access (register-level tests, Fig. 10 memory
  /// accounting).
  [[nodiscard]] const RingTable& ring_table(net::SwitchId sw) const {
    return state_[sw].ring;
  }

 private:
  struct SwitchSlice {
    RingTable ring;
    BackendCounters counters;
    explicit SwitchSlice(std::size_t capacity) : ring(capacity) {}
  };

  std::size_t ring_capacity_;
  std::vector<SwitchSlice> state_;
};

}  // namespace mars::telemetry
