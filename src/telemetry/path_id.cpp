#include "telemetry/path_id.hpp"

#include <array>

#include "util/crc.hpp"

namespace mars::telemetry {

const char* hash_name(HashKind kind) {
  return kind == HashKind::kCrc16 ? "crc16" : "crc32";
}

std::optional<HashKind> hash_from_name(std::string_view name) {
  if (name == "crc16") return HashKind::kCrc16;
  if (name == "crc32") return HashKind::kCrc32;
  return std::nullopt;
}

std::uint32_t update_path_id(const PathIdConfig& config,
                             std::uint32_t path_id, net::SwitchId sw,
                             net::PortId in_port, net::PortId out_port,
                             std::uint32_t control) {
  const std::array<std::uint32_t, 5> words{path_id, sw, in_port, out_port,
                                           control};
  const std::uint32_t digest = config.hash == HashKind::kCrc16
                                   ? util::crc16_words(words)
                                   : util::crc32_words(words);
  return digest & config.mask();
}

std::uint32_t update_path_id_with_mat(const PathIdConfig& config,
                                      const ControlMat& mat,
                                      std::uint32_t path_id, net::SwitchId sw,
                                      net::PortId in_port,
                                      net::PortId out_port) {
  std::uint32_t control = 0;
  if (const auto it = mat.find(HopKey{path_id, sw, in_port, out_port});
      it != mat.end()) {
    control = it->second;
  }
  return update_path_id(config, path_id, sw, in_port, out_port, control);
}

}  // namespace mars::telemetry
