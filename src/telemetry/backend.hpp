#pragma once
// Pluggable telemetry-export backends behind one contract.
//
// MARS's data plane splits cleanly into (a) common machinery every export
// mode needs — Ingress/Egress table counting, PathID chaining, the
// one-telemetry-packet-per-flow-per-epoch marking, in-switch detection and
// notifications, sink-side record assembly — and (b) the export mode
// itself: what telemetry state each hop accumulates, how many in-band
// bytes that costs per link, and what the controller sees when it drains a
// sink. `dataplane::MarsPipeline` keeps (a); a TelemetryBackend supplies
// (b). Three backends ship:
//
//   postcard  — the paper's mode: per-telemetry-packet RtRecords into the
//               sink Ring Table (11-byte INT header + 1-byte PathID
//               in band). Bit-identical to the pre-backend pipeline.
//   int-md    — INT 2.1 eMbed-Data: per-hop metadata stack grows with the
//               path; sinks pop full hop detail (Fig. 3's comparison).
//   histogram — in-switch aggregation (P4TG-style): per-port log-linear
//               latency/queue histograms plus event-detection triggers;
//               sinks export compact per-(flow, path) epoch digests
//               instead of per-packet records.
//
// Determinism contract: backends model in-band bytes in *accounting only*.
// The packet's wire fields (PathID byte + 11-byte INT header on marked
// packets) are managed by the common pipeline identically for every
// backend, so serialization timing — and therefore the event schedule and
// every fixed-seed golden — is backend-invariant. The bytes a backend
// returns from on_hop_egress() are what its wire format *would* occupy,
// which is exactly what the bandwidth-vs-accuracy frontier compares.
//
// Shard discipline: hooks run on shard threads in sharded mode and may
// only touch per-switch state of ctx.id. Only the postcard backend honors
// that (int-md and histogram keep cross-switch in-flight state), so
// validate_scenario restricts sharded runs to the postcard backend.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/observer.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"
#include "telemetry/int_md.hpp"
#include "telemetry/tables.hpp"

namespace mars::telemetry {

enum class BackendKind { kPostcard, kIntMd, kHistogram };

[[nodiscard]] const char* to_string(BackendKind kind);
[[nodiscard]] std::optional<BackendKind> backend_from_name(
    std::string_view name);
/// All valid backend names, in declaration order.
[[nodiscard]] const std::vector<std::string>& known_backend_names();
/// Closest known name to a misspelled one (edit distance; empty if
/// nothing is close enough to suggest).
[[nodiscard]] std::string suggest_backend(std::string_view name);

/// Histogram backend tuning (see histogram_backend.hpp for the model).
struct HistogramBackendConfig {
  /// Log-linear layout of the per-port in-switch histograms (and of the
  /// digest latency quantizer, in microsecond units: 96 buckets at 2
  /// sub-bucket bits span ~16 s).
  std::uint32_t buckets = 96;
  std::uint32_t sub_bucket_bits = 2;
  /// In-band marker replacing the 11-byte postcard header in this mode's
  /// wire-format accounting: 4B source timestamp + 2B last-epoch count +
  /// 1B epoch id (queue depths live in the switch histograms, not in the
  /// packet).
  std::uint32_t marker_bytes = 7;
  /// Event-detection trigger: fires when the fraction of this epoch's
  /// delivered telemetry latencies above `tail_latency` rises through
  /// `trigger_enter`; re-arms when it falls to `trigger_exit` or below.
  sim::Time tail_latency = 30 * sim::kMillisecond;
  double trigger_enter = 0.10;
  double trigger_exit = 0.02;
  /// Sink digest ring capacity; 0 = inherit the pipeline ring capacity.
  std::size_t digest_capacity = 0;
};

struct BackendConfig {
  BackendKind kind = BackendKind::kPostcard;
  IntMdConfig int_md;
  HistogramBackendConfig histogram;
};

/// Cumulative export-side counters, surfaced as telemetry.backend.* gauges.
struct BackendCounters {
  std::uint64_t inband_bytes = 0;  ///< accounted wire bytes across links
  std::uint64_t records = 0;       ///< records/digests exported at sinks
  std::uint64_t epochs = 0;        ///< epoch rollovers observed (any switch)
  std::uint64_t triggers = 0;      ///< event-detection firings (histogram)
};

class TelemetryBackend {
 public:
  virtual ~TelemetryBackend() = default;

  [[nodiscard]] virtual BackendKind kind() const = 0;
  [[nodiscard]] const char* name() const { return to_string(kind()); }

  // ---- per-packet hooks (called by MarsPipeline; ctx.id discipline) ----
  /// The source switch marked `pkt` as this flow's telemetry packet for
  /// the current epoch (its IntHeader is already set).
  virtual void on_marked(net::SwitchContext& /*ctx*/,
                         const net::Packet& /*pkt*/) {}
  /// A MARS-tracked packet was enqueued on `out` behind `queue_depth`
  /// packets.
  virtual void on_hop_enqueue(net::SwitchContext& /*ctx*/,
                              const net::Packet& /*pkt*/, net::PortId /*out*/,
                              std::uint32_t /*queue_depth*/) {}
  /// A MARS-tracked packet leaves ctx.id towards `out`. Returns the
  /// in-band bytes this backend's wire format occupies on that link
  /// (accounting only — see the determinism contract above).
  [[nodiscard]] virtual std::uint32_t on_hop_egress(
      net::SwitchContext& ctx, const net::Packet& pkt, net::PortId out,
      sim::Time hop_latency) = 0;
  /// A tracked packet was dropped before reaching its sink.
  virtual void on_drop(net::SwitchContext& /*ctx*/,
                       const net::Packet& /*pkt*/) {}
  /// The sink assembled the common RtRecord for a delivered telemetry
  /// packet; export it in this backend's format.
  virtual void on_sink_record(net::SwitchContext& ctx, const net::Packet& pkt,
                              const RtRecord& rec) = 0;
  /// Switch `sw` observed its local epoch advance to `epoch`.
  virtual void on_epoch_rollover(net::SwitchId /*sw*/, EpochId /*epoch*/,
                                 sim::Time /*now*/) {}

  // ---- controller drain surface ----
  /// Records currently readable at sink `sw`, oldest first. Register-read
  /// semantics: non-destructive, repeat reads see retained records again
  /// (the controller's poll watermark dedupes).
  [[nodiscard]] virtual std::vector<RtRecord> drain(net::SwitchId sw) const = 0;
  /// Wire bytes the control plane pays per drained record (Fig. 9
  /// diagnosis-bandwidth accounting).
  [[nodiscard]] virtual std::uint32_t record_wire_bytes() const = 0;
  /// Occupancy of the export store at `sw` (mars.ring_occupancy gauge).
  [[nodiscard]] virtual std::size_t store_size(net::SwitchId sw) const = 0;
  [[nodiscard]] virtual std::size_t store_capacity() const = 0;

  /// Merged across switches.
  [[nodiscard]] virtual BackendCounters counters() const = 0;
};

/// Build a backend. `ring_capacity` is the pipeline's sink-store capacity;
/// `epoch_period` the telemetry epoch length.
[[nodiscard]] std::unique_ptr<TelemetryBackend> make_backend(
    const BackendConfig& config, std::size_t switch_count,
    sim::Time epoch_period, std::size_t ring_capacity);

}  // namespace mars::telemetry
