#pragma once
// INT-MD (eMbed Data) mode, per the INT 2.1 dataplane specification —
// the conventional alternative MARS's Motivation #2 argues against:
// every hop pushes its metadata onto a stack inside the packet header, so
// the header grows with the path and the sink sees full per-hop detail.
//
// Implemented as a PacketObserver so it can be deployed on the same
// substrate as the MARS pipeline for apples-to-apples bandwidth and
// diagnosis-power comparisons (Fig. 3, extended Fig. 9).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/observer.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace mars::telemetry {

/// One hop's embedded metadata (a subset of the INT 2.1 instruction set:
/// node id, level-1 ports, hop latency, queue occupancy).
struct IntMdHop {
  net::SwitchId sw = net::kInvalidSwitch;
  net::PortId in_port = 0;
  net::PortId out_port = 0;
  sim::Time hop_latency = 0;
  std::uint32_t queue_depth = 0;

  /// Wire bytes per hop entry (4 metadata words, as in the INT spec).
  static constexpr std::uint32_t kWireBytes = 8;
};

struct IntMdConfig {
  /// INT shim + md header prepended at the source.
  std::uint32_t shim_bytes = 12;
  /// Sample 1-in-N packets (1 = every packet, the classic deployment).
  std::uint32_t sample_every = 1;
  /// Stop pushing metadata beyond this many hops (spec's Remaining Hop
  /// Count); deeper hops traverse without recording.
  std::uint32_t max_hops = 16;
  /// Retention cap on sink-side records between collect() calls. A
  /// long-lived run that never collects must not grow without bound; at
  /// the cap the oldest half is evicted (ring-table discipline: newest
  /// evidence wins).
  std::size_t max_records = 4096;
};

/// Per-hop record sink-side, after the stack is popped.
struct IntMdRecord {
  std::uint64_t packet_id = 0;
  net::FlowId flow;
  sim::Time sink_time = 0;
  std::vector<IntMdHop> hops;
};

class IntMdPipeline : public net::PacketObserver {
 public:
  explicit IntMdPipeline(IntMdConfig config = {});

  /// Records extracted at sinks since the last collect(), in delivery
  /// order (bounded by IntMdConfig::max_records).
  [[nodiscard]] const std::vector<IntMdRecord>& records() const {
    return records_;
  }
  /// Drain retained records (the collector's read empties the store, like
  /// a ring-table drain); delivery order, oldest first.
  [[nodiscard]] std::vector<IntMdRecord> collect() {
    std::vector<IntMdRecord> out;
    out.swap(records_);
    return out;
  }
  /// Records evicted because the retention cap was hit before a collect.
  [[nodiscard]] std::uint64_t dropped_records() const {
    return dropped_records_;
  }
  /// In-band bytes this mode put on the wire so far.
  [[nodiscard]] std::uint64_t telemetry_bytes() const {
    return telemetry_bytes_;
  }

  /// Mean hop latency per switch over records within [from, to) — the
  /// kind of query full INT visibility makes trivial.
  [[nodiscard]] std::unordered_map<net::SwitchId, double> mean_hop_latency(
      sim::Time from, sim::Time to) const;

  // ---- PacketObserver ----
  void on_ingress(net::SwitchContext& ctx, net::Packet& pkt) override;
  void on_enqueue(net::SwitchContext& ctx, net::Packet& pkt, net::PortId out,
                  std::uint32_t queue_depth) override;
  void on_egress(net::SwitchContext& ctx, net::Packet& pkt, net::PortId out,
                 sim::Time hop_latency) override;
  void on_deliver(net::SwitchContext& ctx, net::Packet& pkt) override;
  void on_drop(net::SwitchContext& ctx, const net::Packet& pkt,
               net::PortId out) override;

 private:
  struct InFlight {
    std::vector<IntMdHop> hops;
    std::uint32_t pending_queue_depth = 0;
    net::PortId pending_out = 0;
  };

  IntMdConfig config_;
  std::unordered_map<std::uint64_t, InFlight> in_flight_;
  std::vector<IntMdRecord> records_;
  std::uint64_t telemetry_bytes_ = 0;
  std::uint64_t sample_counter_ = 0;
  std::uint64_t dropped_records_ = 0;
};

}  // namespace mars::telemetry
