#include "telemetry/int_md.hpp"

#include "sim/simulator.hpp"

namespace mars::telemetry {

IntMdPipeline::IntMdPipeline(IntMdConfig config) : config_(config) {}

void IntMdPipeline::on_ingress(net::SwitchContext& ctx, net::Packet& pkt) {
  if (ctx.id != pkt.flow.source) return;
  // Source switch decides whether this packet carries an INT stack.
  if (config_.sample_every > 1 &&
      (sample_counter_++ % config_.sample_every) != 0) {
    return;
  }
  in_flight_.try_emplace(pkt.id);
}

void IntMdPipeline::on_enqueue(net::SwitchContext& /*ctx*/, net::Packet& pkt,
                               net::PortId out, std::uint32_t queue_depth) {
  const auto it = in_flight_.find(pkt.id);
  if (it == in_flight_.end()) return;
  it->second.pending_queue_depth = queue_depth;
  it->second.pending_out = out;
}

void IntMdPipeline::on_egress(net::SwitchContext& ctx, net::Packet& pkt,
                              net::PortId out, sim::Time hop_latency) {
  const auto it = in_flight_.find(pkt.id);
  if (it == in_flight_.end()) return;
  InFlight& state = it->second;
  if (state.hops.size() < config_.max_hops) {
    state.hops.push_back(IntMdHop{ctx.id, pkt.ingress_port, out, hop_latency,
                                  state.pending_queue_depth});
  }
  // The packet carries shim + one entry per recorded hop across this link.
  telemetry_bytes_ +=
      config_.shim_bytes +
      static_cast<std::uint64_t>(state.hops.size()) * IntMdHop::kWireBytes;
}

void IntMdPipeline::on_deliver(net::SwitchContext& ctx, net::Packet& pkt) {
  const auto it = in_flight_.find(pkt.id);
  if (it == in_flight_.end()) return;
  // Sink: record its own (queue-less) hop, pop the stack, strip the header.
  IntMdRecord record;
  record.packet_id = pkt.id;
  record.flow = pkt.flow;
  record.sink_time = ctx.sim.now();
  record.hops = std::move(it->second.hops);
  record.hops.push_back(
      IntMdHop{ctx.id, pkt.ingress_port, net::kHostPort, 0, 0});
  if (config_.max_records > 0 && records_.size() >= config_.max_records) {
    // Retention cap between collects: evict the oldest half in one move
    // (amortized O(1) per insert) rather than growing without bound.
    const std::size_t keep = config_.max_records / 2;
    const std::size_t evict = records_.size() - keep;
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(evict));
    dropped_records_ += evict;
  }
  records_.push_back(std::move(record));
  in_flight_.erase(it);
}

void IntMdPipeline::on_drop(net::SwitchContext& /*ctx*/,
                            const net::Packet& pkt, net::PortId /*out*/) {
  in_flight_.erase(pkt.id);
}

std::unordered_map<net::SwitchId, double> IntMdPipeline::mean_hop_latency(
    sim::Time from, sim::Time to) const {
  std::unordered_map<net::SwitchId, std::pair<double, std::uint64_t>> acc;
  for (const auto& record : records_) {
    if (record.sink_time < from || record.sink_time >= to) continue;
    for (const auto& hop : record.hops) {
      auto& [sum, n] = acc[hop.sw];
      sum += static_cast<double>(hop.hop_latency);
      ++n;
    }
  }
  std::unordered_map<net::SwitchId, double> out;
  for (const auto& [sw, pair] : acc) {
    if (pair.second > 0) {
      out[sw] = pair.first / static_cast<double>(pair.second);
    }
  }
  return out;
}

}  // namespace mars::telemetry
