#pragma once
// Edge-switch telemetry state (paper §4.2.2):
//
//   - Ingress Table (IT), on source switches: per-flow packet counts per
//     epoch plus the timestamp/epoch of the last telemetry packet, so only
//     one telemetry packet is marked per flow per epoch.
//   - Egress Table (ET), on sink switches: per-(PathID, FlowID) packet and
//     byte counts per epoch.
//   - Ring Table (RT), on sink switches: fixed-size ring of per-telemetry-
//     packet records (latency, counts, queue depth, epoch gap) that the
//     control plane drains on demand for diagnosis.
//
// The paper stores only the "other half" of the FlowID on each edge switch
// (s_sink on the source, s_source on the sink); we keep full FlowIds in the
// API for clarity and account the memory with the halved key width.

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"
#include "telemetry/epoch.hpp"
#include "util/ring_buffer.hpp"

namespace mars::telemetry {

/// Ingress Table: lives on every source switch.
class IngressTable {
 public:
  explicit IngressTable(sim::Time epoch_period = kDefaultEpochPeriod)
      : period_(epoch_period) {}

  /// Count one incoming packet of `flow` at time `now`. Rolls the per-flow
  /// epoch window forward when `now` enters a new epoch.
  void count_packet(const net::FlowId& flow, sim::Time now);

  /// True if no telemetry packet has been marked for `flow` in the epoch of
  /// `now`; records the marking when it returns true.
  bool try_mark_telemetry(const net::FlowId& flow, sim::Time now);

  /// Packet count of `flow` in the epoch before the one containing `now`
  /// (the value the telemetry header carries as "packet count ... in the
  /// last epoch").
  [[nodiscard]] std::uint32_t last_epoch_count(const net::FlowId& flow,
                                               sim::Time now) const;

  /// Packet count so far in the epoch containing `now`.
  [[nodiscard]] std::uint32_t current_epoch_count(const net::FlowId& flow,
                                                  sim::Time now) const;

  [[nodiscard]] sim::Time epoch_period() const { return period_; }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

 private:
  struct FlowEntry {
    EpochId epoch = 0;                  ///< epoch of `current_count`
    std::uint32_t current_count = 0;
    std::uint32_t previous_count = 0;   ///< count in `epoch - 1` (0 if stale)
    EpochId previous_epoch = 0;
    EpochId last_telemetry_epoch = 0;
    bool telemetry_marked = false;
    sim::Time last_telemetry_time = 0;
  };

  void roll(FlowEntry& e, EpochId epoch) const;

  sim::Time period_;
  std::unordered_map<net::FlowId, FlowEntry> flows_;
};

/// Egress Table: per-(PathID, FlowID) counters on sink switches.
class EgressTable {
 public:
  explicit EgressTable(sim::Time epoch_period = kDefaultEpochPeriod)
      : period_(epoch_period) {}

  void count_packet(std::uint32_t path_id, const net::FlowId& flow,
                    std::uint32_t bytes, sim::Time now);

  struct PathCounters {
    std::uint32_t packets = 0;
    std::uint64_t bytes = 0;
  };

  /// Counters for the epoch containing `now`.
  [[nodiscard]] PathCounters current(std::uint32_t path_id,
                                     const net::FlowId& flow,
                                     sim::Time now) const;
  /// Counters for the epoch before the one containing `now`.
  [[nodiscard]] PathCounters previous(std::uint32_t path_id,
                                      const net::FlowId& flow,
                                      sim::Time now) const;

  /// Packets of `flow` summed over all paths in the epoch containing `now`.
  [[nodiscard]] std::uint32_t flow_current_packets(const net::FlowId& flow,
                                                   sim::Time now) const;
  /// Same for the previous epoch.
  [[nodiscard]] std::uint32_t flow_previous_packets(const net::FlowId& flow,
                                                    sim::Time now) const;

  /// Per-path packet counts of `flow` in the epoch containing `now`
  /// (current + previous epoch summed, so a path sampled in either stays
  /// visible). Sorted by path id for determinism.
  struct FlowPathCount {
    std::uint32_t path_id = 0;
    std::uint32_t packets = 0;
  };
  [[nodiscard]] std::vector<FlowPathCount> flow_path_counts(
      const net::FlowId& flow, sim::Time now) const;

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

 private:
  struct Key {
    std::uint32_t path_id;
    net::FlowId flow;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<net::FlowId>{}(k.flow) * 1000003u ^ k.path_id;
    }
  };
  struct Entry {
    EpochId epoch = 0;
    PathCounters current;
    PathCounters previous;
    EpochId previous_epoch = 0;
  };

  void roll(Entry& e, EpochId epoch) const;

  sim::Time period_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
};

/// One Ring Table record, extracted from a telemetry packet at the sink.
struct RtRecord {
  net::FlowId flow;
  std::uint32_t path_id = 0;
  EpochId epoch_id = 0;            ///< epoch id carried by the packet
  sim::Time source_timestamp = 0;  ///< ingress time at the source switch
  sim::Time sink_timestamp = 0;    ///< extraction time at the sink
  sim::Time latency = 0;           ///< sink_timestamp - source_timestamp
  std::uint32_t total_queue_depth = 0;  ///< in-network sum over hops
  std::uint32_t src_last_epoch_count = 0;  ///< from the telemetry header
  std::uint32_t sink_last_epoch_count = 0; ///< ET count at the sink
  std::uint32_t path_epoch_packets = 0;    ///< path-level count, this epoch
  std::uint64_t path_epoch_bytes = 0;
  std::uint32_t flow_epoch_packets = 0;    ///< flow-level count, this epoch
  std::uint32_t epoch_gap = 0;  ///< gap to the previous telemetry epoch - 1
  /// Per-path packet counts of the flow around this epoch (from the
  /// Egress Table), capped at kMaxPaths entries. Complete counts — not
  /// just the sampled path — so the control plane can judge ECMP splits.
  static constexpr std::size_t kMaxPaths = 4;
  std::array<EgressTable::FlowPathCount, kMaxPaths> path_counts{};
  std::uint8_t path_count_n = 0;

  /// Serialized size when the control plane drains the record (diagnosis
  /// bandwidth accounting, Fig. 9). Timestamps are compressed to 4 bytes as
  /// in SpiderMon.
  static constexpr std::uint32_t kWireBytes =
      4 /*flow*/ + 4 /*path*/ + 4 /*epoch*/ + 4 /*latency*/ + 4 /*qdepth*/ +
      8 /*counts*/ + 6 /*path stats*/ + 2 /*gap*/ +
      kMaxPaths * 6 /*per-path counts*/;
};

/// Ring Table: newest-overwrites-oldest record store on sink switches.
class RingTable {
 public:
  explicit RingTable(std::size_t capacity = 1024) : ring_(capacity) {}

  void insert(const RtRecord& record) { ring_.push(record); }

  /// Records currently retained, oldest first (the control plane's
  /// diagnosis snapshot).
  [[nodiscard]] std::vector<RtRecord> snapshot() const {
    return ring_.snapshot();
  }

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }
  void clear() { ring_.clear(); }

  /// SRAM register bytes this table occupies on-switch (Fig. 10 accounting).
  [[nodiscard]] std::size_t memory_bytes() const {
    return capacity() * RtRecord::kWireBytes;
  }

 private:
  util::RingBuffer<RtRecord> ring_;
};

}  // namespace mars::telemetry
