#pragma once
// PathID computation (paper §4.1).
//
// "PathID is updated per hop as the packet traverses across switches. At
//  each hop, the updated PathID is hashed by {PathID, switchID, ingress
//  port, egress port, control}. The control field is set to zero by default
//  unless the hashed value has conflicts with another flow."
//
// The same update function runs in the data plane (per packet) and in the
// control plane (once per enumerated path, to precompute the PathID ->
// switch-sequence map). The control plane resolves hash conflicts by
// installing Match-Action Table entries that override the control word at a
// specific hop; the number of such entries is the switch-memory cost that
// §5.5 compares against IntSight.

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "net/types.hpp"

namespace mars::telemetry {

/// Which Tofino hash generator the deployment uses.
enum class HashKind : std::uint8_t { kCrc16, kCrc32 };

[[nodiscard]] const char* hash_name(HashKind kind);
/// Parse "crc16" / "crc32" (nullopt if unknown).
[[nodiscard]] std::optional<HashKind> hash_from_name(std::string_view name);

/// PathIDs are carried in a fixed-width reserved IP field; narrower widths
/// save header bytes but collide more often (resolved with MAT entries).
struct PathIdConfig {
  HashKind hash = HashKind::kCrc16;
  std::uint32_t width_bits = 16;  ///< 1..32

  [[nodiscard]] std::uint32_t mask() const {
    return width_bits >= 32 ? 0xFFFFFFFFu : ((1u << width_bits) - 1u);
  }
};

/// Key identifying one hop's MAT override: the PathID value entering the
/// hop plus the hop coordinates. A data-plane match on this key yields a
/// non-zero control word.
struct HopKey {
  std::uint32_t path_id_in = 0;
  net::SwitchId sw = 0;
  net::PortId in_port = 0;
  net::PortId out_port = 0;

  bool operator==(const HopKey&) const = default;
};

struct HopKeyHash {
  std::size_t operator()(const HopKey& k) const noexcept {
    std::size_t h = k.path_id_in;
    h = h * 1000003u ^ k.sw;
    h = h * 1000003u ^ k.in_port;
    h = h * 1000003u ^ k.out_port;
    return h;
  }
};

/// MAT entries installed by the control plane to break hash conflicts.
/// Lookups are exact-match, as on the Tofino prototype.
using ControlMat = std::unordered_map<HopKey, std::uint32_t, HopKeyHash>;

/// One PathID hop update. `control` is zero unless a MAT entry overrides it.
[[nodiscard]] std::uint32_t update_path_id(const PathIdConfig& config,
                                           std::uint32_t path_id,
                                           net::SwitchId sw,
                                           net::PortId in_port,
                                           net::PortId out_port,
                                           std::uint32_t control);

/// Data-plane helper: apply the MAT (if any entry matches) then update.
[[nodiscard]] std::uint32_t update_path_id_with_mat(
    const PathIdConfig& config, const ControlMat& mat, std::uint32_t path_id,
    net::SwitchId sw, net::PortId in_port, net::PortId out_port);

}  // namespace mars::telemetry
