#include "telemetry/postcard_backend.hpp"

namespace mars::telemetry {

PostcardBackend::PostcardBackend(std::size_t switch_count,
                                 std::size_t ring_capacity)
    : ring_capacity_(ring_capacity) {
  state_.reserve(switch_count);
  for (std::size_t i = 0; i < switch_count; ++i) {
    state_.emplace_back(ring_capacity);
  }
}

void PostcardBackend::on_marked(net::SwitchContext& /*ctx*/,
                                const net::Packet& /*pkt*/) {}

std::uint32_t PostcardBackend::on_hop_egress(net::SwitchContext& ctx,
                                             const net::Packet& pkt,
                                             net::PortId /*out*/,
                                             sim::Time /*hop_latency*/) {
  // The wire format is the packet's actual monitoring overhead.
  const std::uint32_t bytes = pkt.monitoring_overhead_bytes();
  state_[ctx.id].counters.inband_bytes += bytes;
  return bytes;
}

void PostcardBackend::on_sink_record(net::SwitchContext& ctx,
                                     const net::Packet& /*pkt*/,
                                     const RtRecord& rec) {
  SwitchSlice& st = state_[ctx.id];
  st.ring.insert(rec);
  ++st.counters.records;
}

void PostcardBackend::on_epoch_rollover(net::SwitchId sw, EpochId /*epoch*/,
                                        sim::Time /*now*/) {
  ++state_[sw].counters.epochs;
}

std::vector<RtRecord> PostcardBackend::drain(net::SwitchId sw) const {
  return state_[sw].ring.snapshot();
}

std::size_t PostcardBackend::store_size(net::SwitchId sw) const {
  return state_[sw].ring.size();
}

BackendCounters PostcardBackend::counters() const {
  BackendCounters total;
  for (const SwitchSlice& st : state_) {
    total.inband_bytes += st.counters.inband_bytes;
    total.records += st.counters.records;
    total.epochs += st.counters.epochs;
    total.triggers += st.counters.triggers;
  }
  return total;
}

}  // namespace mars::telemetry
