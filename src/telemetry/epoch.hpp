#pragma once
// Telemetry epochs (paper §4.2): the source switch marks one telemetry
// packet per flow per epoch; per-epoch packet counts drive drop detection.

#include <cstdint>

#include "sim/time.hpp"

namespace mars::telemetry {

using EpochId = std::uint32_t;

/// Epoch id of a timestamp under period `period` (set by the controller at
/// runtime; the prototype default is 100 ms).
[[nodiscard]] constexpr EpochId epoch_of(sim::Time t, sim::Time period) {
  return static_cast<EpochId>(t / period);
}

inline constexpr sim::Time kDefaultEpochPeriod = 100 * sim::kMillisecond;

}  // namespace mars::telemetry
