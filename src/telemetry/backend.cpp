#include "telemetry/backend.hpp"

#include <algorithm>

#include "telemetry/histogram_backend.hpp"
#include "telemetry/int_md_backend.hpp"
#include "telemetry/postcard_backend.hpp"

namespace mars::telemetry {

namespace {

constexpr BackendKind kAllKinds[] = {BackendKind::kPostcard,
                                     BackendKind::kIntMd,
                                     BackendKind::kHistogram};

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kPostcard: return "postcard";
    case BackendKind::kIntMd: return "int-md";
    case BackendKind::kHistogram: return "histogram";
  }
  return "?";
}

std::optional<BackendKind> backend_from_name(std::string_view name) {
  for (const BackendKind kind : kAllKinds) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

const std::vector<std::string>& known_backend_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const BackendKind kind : kAllKinds) out.emplace_back(to_string(kind));
    return out;
  }();
  return names;
}

std::string suggest_backend(std::string_view name) {
  std::string best;
  std::size_t best_dist = 4;  // past 3 edits a suggestion is noise
  for (const std::string& known : known_backend_names()) {
    const std::size_t dist = edit_distance(name, known);
    if (dist < best_dist) {
      best_dist = dist;
      best = known;
    }
  }
  return best;
}

std::unique_ptr<TelemetryBackend> make_backend(const BackendConfig& config,
                                               std::size_t switch_count,
                                               sim::Time epoch_period,
                                               std::size_t ring_capacity) {
  switch (config.kind) {
    case BackendKind::kPostcard:
      return std::make_unique<PostcardBackend>(switch_count, ring_capacity);
    case BackendKind::kIntMd:
      return std::make_unique<IntMdBackend>(config.int_md, switch_count,
                                            ring_capacity);
    case BackendKind::kHistogram:
      return std::make_unique<HistogramBackend>(config.histogram, switch_count,
                                                epoch_period, ring_capacity);
  }
  return nullptr;
}

}  // namespace mars::telemetry
