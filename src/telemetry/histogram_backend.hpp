#pragma once
// In-switch histogram + event-detection export backend (the P4TG /
// "Programmable Event Detection for INT" direction): switches aggregate
// telemetry locally instead of exporting per-packet records.
//
//   every switch:  per-egress-port log-linear histograms of hop latency
//                  (microseconds) and queue depth, reset at each local
//                  epoch rollover — the register-array state a Tofino
//                  pipeline can maintain at line rate;
//   sink switch:   per-flow epoch digests folded from delivered telemetry
//                  packets (latency quantized to its log-linear bucket,
//                  queue depths left to the switch histograms), sealed
//                  into a bounded digest ring at epoch rollover;
//   triggers:      a per-sink hysteresis detector over the fraction of
//                  this epoch's delivered latencies above a tail bound —
//                  on a rising edge the current digests are sealed early
//                  so anomalous evidence becomes drainable immediately.
//
// In-band wire format: marked packets carry a 7-byte marker (timestamp +
// last-epoch count + epoch id) instead of the 11-byte postcard header —
// queue depth is not accumulated in-band, which is the backend's accuracy
// cost (digest RtRecords report total_queue_depth = 0) and its bandwidth
// win. Drained digests are also cheaper than full RtRecords
// (kDigestWireBytes vs RtRecord::kWireBytes).
//
// Not shard-safe: digests aggregate at sinks while latency evidence
// accrues at transit switches of other shards.

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "telemetry/backend.hpp"
#include "util/histogram.hpp"
#include "util/ring_buffer.hpp"

namespace mars::telemetry {

/// Hysteresis trigger: fires on a rising edge through `enter`, then stays
/// silent until the signal falls to `exit` or below.
class EventDetector {
 public:
  EventDetector(double enter, double exit) : enter_(enter), exit_(exit) {}

  /// Feed the current signal level; true exactly on a rising edge.
  bool update(double level) {
    if (triggered_) {
      if (level <= exit_) triggered_ = false;
      return false;
    }
    if (level >= enter_) {
      triggered_ = true;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool triggered() const { return triggered_; }

 private:
  double enter_;
  double exit_;
  bool triggered_ = false;
};

class HistogramBackend final : public TelemetryBackend {
 public:
  /// Wire bytes per drained digest: flow (4) + path (4) + epoch (2) +
  /// latency bucket (2) + src/sink last-epoch counts (2+2) + flow epoch
  /// packets (2) + epoch gap (2) + per-path counts (kMaxPaths * 5).
  static constexpr std::uint32_t kDigestWireBytes =
      20 + RtRecord::kMaxPaths * 5;

  HistogramBackend(HistogramBackendConfig config, std::size_t switch_count,
                   sim::Time epoch_period, std::size_t ring_capacity);

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kHistogram;
  }

  [[nodiscard]] std::uint32_t on_hop_egress(net::SwitchContext& ctx,
                                            const net::Packet& pkt,
                                            net::PortId out,
                                            sim::Time hop_latency) override;
  void on_hop_enqueue(net::SwitchContext& ctx, const net::Packet& pkt,
                      net::PortId out, std::uint32_t queue_depth) override;
  void on_sink_record(net::SwitchContext& ctx, const net::Packet& pkt,
                      const RtRecord& rec) override;
  void on_epoch_rollover(net::SwitchId sw, EpochId epoch,
                         sim::Time now) override;

  [[nodiscard]] std::vector<RtRecord> drain(net::SwitchId sw) const override;
  [[nodiscard]] std::uint32_t record_wire_bytes() const override {
    return kDigestWireBytes;
  }
  [[nodiscard]] std::size_t store_size(net::SwitchId sw) const override;
  [[nodiscard]] std::size_t store_capacity() const override {
    return digest_capacity_;
  }
  [[nodiscard]] BackendCounters counters() const override;

  /// Latency a digest reports for a raw latency sample: the microsecond
  /// log-linear bucket floor, scaled back to nanoseconds.
  [[nodiscard]] sim::Time quantize_latency(sim::Time latency) const;

  // ---- test/introspection surface ----
  [[nodiscard]] const util::LogLinearHistogram* port_latency_hist(
      net::SwitchId sw, net::PortId port) const;
  [[nodiscard]] const util::LogLinearHistogram* port_queue_hist(
      net::SwitchId sw, net::PortId port) const;
  [[nodiscard]] const EventDetector& detector(net::SwitchId sw) const {
    return state_[sw].detector;
  }
  [[nodiscard]] const HistogramBackendConfig& config() const {
    return config_;
  }

 private:
  /// One flow's folded evidence for the epoch being aggregated at a sink.
  struct Digest {
    RtRecord last;            ///< latest contributing record, latency raw
    sim::Time max_latency = 0;
    std::uint32_t max_gap = 0;
    std::uint32_t merged = 0; ///< records folded in
  };
  struct PortHists {
    util::LogLinearHistogram latency;
    util::LogLinearHistogram queue;
    PortHists(std::uint32_t sub_bits, std::size_t buckets)
        : latency(sub_bits, buckets), queue(sub_bits, buckets) {}
  };
  struct SwitchSlice {
    std::map<net::PortId, PortHists> ports;  ///< ordered for determinism
    util::LogLinearHistogram sink_latency;   ///< delivered telemetry, us
    std::map<net::FlowId, Digest> live;      ///< current-epoch digests
    util::RingBuffer<RtRecord> sealed;
    EventDetector detector;
    BackendCounters counters;
    SwitchSlice(std::uint32_t sub_bits, std::size_t buckets,
                std::size_t digest_capacity, double enter, double exit)
        : sink_latency(sub_bits, buckets), sealed(digest_capacity),
          detector(enter, exit) {}
  };

  [[nodiscard]] RtRecord to_record(const Digest& d) const;
  void seal_live(SwitchSlice& st);

  HistogramBackendConfig config_;
  sim::Time epoch_period_;
  std::size_t digest_capacity_;
  /// Empty histogram used only for bucket math when quantizing latencies.
  util::LogLinearHistogram quantizer_;
  std::vector<SwitchSlice> state_;
};

}  // namespace mars::telemetry
