#pragma once
// INT-MD (eMbed Data) export backend, per the INT 2.1 dataplane spec:
// marked packets carry a shim plus one 8-byte metadata entry per hop, so
// in-band cost grows with path length. Sinks pop the stack and retain the
// full per-hop detail next to the common RtRecord.
//
// The backend rides the pipeline's one-telemetry-packet-per-flow-per-epoch
// marking (optionally thinned by IntMdConfig::sample_every), so on a
// perfect channel its drained RtRecords are identical to the postcard
// backend's for the same seed — the differential test pins that. What
// differs is the accounted wire format (stack vs fixed header) and the
// extra hop-level evidence kept at sinks.
//
// Not shard-safe: the in-flight hop stacks are keyed by packet id and
// written at every hop the packet crosses.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "telemetry/backend.hpp"
#include "util/ring_buffer.hpp"

namespace mars::telemetry {

class IntMdBackend final : public TelemetryBackend {
 public:
  /// A drained record plus the hop stack its telemetry packet carried.
  struct StoredRecord {
    RtRecord rec;
    std::vector<IntMdHop> hops;
  };

  IntMdBackend(IntMdConfig config, std::size_t switch_count,
               std::size_t ring_capacity);

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kIntMd;
  }

  void on_marked(net::SwitchContext& ctx, const net::Packet& pkt) override;
  void on_hop_enqueue(net::SwitchContext& ctx, const net::Packet& pkt,
                      net::PortId out, std::uint32_t queue_depth) override;
  [[nodiscard]] std::uint32_t on_hop_egress(net::SwitchContext& ctx,
                                            const net::Packet& pkt,
                                            net::PortId out,
                                            sim::Time hop_latency) override;
  void on_drop(net::SwitchContext& ctx, const net::Packet& pkt) override;
  void on_sink_record(net::SwitchContext& ctx, const net::Packet& pkt,
                      const RtRecord& rec) override;
  void on_epoch_rollover(net::SwitchId sw, EpochId epoch,
                         sim::Time now) override;

  [[nodiscard]] std::vector<RtRecord> drain(net::SwitchId sw) const override;
  [[nodiscard]] std::uint32_t record_wire_bytes() const override {
    return RtRecord::kWireBytes;
  }
  [[nodiscard]] std::size_t store_size(net::SwitchId sw) const override;
  [[nodiscard]] std::size_t store_capacity() const override {
    return ring_capacity_;
  }
  [[nodiscard]] BackendCounters counters() const override;

  /// Hop-level evidence retained at sink `sw`, oldest first.
  [[nodiscard]] std::vector<StoredRecord> records_with_hops(
      net::SwitchId sw) const {
    return state_[sw].ring.snapshot();
  }

 private:
  struct InFlight {
    std::vector<IntMdHop> hops;
    std::uint32_t pending_queue_depth = 0;
  };
  struct SwitchSlice {
    util::RingBuffer<StoredRecord> ring;
    BackendCounters counters;
    explicit SwitchSlice(std::size_t capacity) : ring(capacity) {}
  };

  IntMdConfig config_;
  std::size_t ring_capacity_;
  std::vector<SwitchSlice> state_;
  std::unordered_map<std::uint64_t, InFlight> in_flight_;
  std::uint64_t sample_counter_ = 0;
};

}  // namespace mars::telemetry
