#pragma once
// Binary classification metrics for anomaly detection (Fig. 8).

#include <cstdint>

namespace mars::metrics {

struct BinaryCounts {
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fn = 0;

  void add(bool predicted, bool actual) {
    if (predicted && actual) ++tp;
    else if (predicted && !actual) ++fp;
    else if (!predicted && actual) ++fn;
    else ++tn;
  }

  [[nodiscard]] double precision() const {
    const auto denom = tp + fp;
    return denom == 0 ? 0.0 : static_cast<double>(tp) /
                                  static_cast<double>(denom);
  }
  [[nodiscard]] double recall() const {
    const auto denom = tp + fn;
    return denom == 0 ? 0.0 : static_cast<double>(tp) /
                                  static_cast<double>(denom);
  }
  [[nodiscard]] double f1() const {
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  [[nodiscard]] double accuracy() const {
    const auto total = tp + fp + tn + fn;
    return total == 0 ? 0.0 : static_cast<double>(tp + tn) /
                                  static_cast<double>(total);
  }
};

}  // namespace mars::metrics
