#pragma once
// Root-cause localization metrics (paper §5.4):
//
//   Recall@k — probability the true root cause appears within the top-k
//   entries of the culprit list;
//   Exam Score — the number of false positives an operator must dismiss
//   before reaching the true root cause; lists missing the truth from
//   their top-5 are charged a default of 10 (paper convention).

#include <cstddef>
#include <optional>
#include <vector>

#include "faults/injector.hpp"
#include "rca/types.hpp"

namespace mars::metrics {

struct MatchOptions {
  /// Require the culprit's assigned cause to match the injected fault kind
  /// (used for MARS; baselines that emit bare locations are graded on
  /// location only).
  bool require_cause = true;
};

/// True when `culprit` names the injected fault.
[[nodiscard]] bool culprit_matches(const rca::Culprit& culprit,
                                   const faults::GroundTruth& truth,
                                   const MatchOptions& options = {});

/// 1-based rank of the first matching culprit; nullopt if absent.
[[nodiscard]] std::optional<std::size_t> rank_of_truth(
    const rca::CulpritList& list, const faults::GroundTruth& truth,
    const MatchOptions& options = {});

/// Aggregates trial outcomes into R@k and Exam Score.
class LocalizationStats {
 public:
  void add(std::optional<std::size_t> rank) { ranks_.push_back(rank); }

  [[nodiscard]] std::size_t trials() const { return ranks_.size(); }

  /// Fraction of trials whose true cause ranked within the top k.
  [[nodiscard]] double recall_at(std::size_t k) const;

  /// Mean false positives before the truth; rank > 5 (or missing) costs
  /// the default 10.
  [[nodiscard]] double exam_score() const;

  static constexpr std::size_t kExamCutoff = 5;
  static constexpr double kExamDefault = 10.0;

 private:
  std::vector<std::optional<std::size_t>> ranks_;
};

}  // namespace mars::metrics
