#include "metrics/ranking.hpp"

#include <algorithm>

namespace mars::metrics {
namespace {

rca::CauseKind cause_of(faults::FaultKind kind) {
  switch (kind) {
    case faults::FaultKind::kMicroBurst: return rca::CauseKind::kMicroBurst;
    case faults::FaultKind::kEcmpImbalance:
      return rca::CauseKind::kEcmpImbalance;
    case faults::FaultKind::kProcessRateDecrease:
      return rca::CauseKind::kProcessRateDecrease;
    case faults::FaultKind::kDelay: return rca::CauseKind::kDelay;
    case faults::FaultKind::kDrop: return rca::CauseKind::kDrop;
    // Gray kinds manifest through the same observable symptoms as their
    // clean counterparts — the RCA has no separate "intermittent" cause.
    case faults::FaultKind::kLinkFlap:
    case faults::FaultKind::kAsymmetricLoss:
      return rca::CauseKind::kDrop;
    case faults::FaultKind::kSlowDrain:
      return rca::CauseKind::kProcessRateDecrease;
    // Extra latency only above a queue-depth threshold is observationally
    // a service-rate problem (latency tracks occupancy), not a constant
    // propagation delay — grade it against the rate-decrease signature.
    case faults::FaultKind::kLoadGatedDelay:
      return rca::CauseKind::kProcessRateDecrease;
    case faults::FaultKind::kNotificationLoss:
    case faults::FaultKind::kReadOutage:
      break;  // unreachable: culprit_matches rejects telemetry faults first
  }
  return rca::CauseKind::kDelay;
}

}  // namespace

bool culprit_matches(const rca::Culprit& culprit,
                     const faults::GroundTruth& truth,
                     const MatchOptions& options) {
  // Telemetry faults degrade the monitoring channel, not the network —
  // there is no culprit location to rank, so nothing ever matches them.
  if (faults::is_telemetry_fault(truth.kind)) return false;
  if (options.require_cause && culprit.cause != cause_of(truth.kind)) {
    // Load-dependent service degradation has no single signature: the
    // same slow-drain port classifies as rate-decrease in a congested
    // window, plain delay in a quiet one, and drop once its queue
    // overflows. Each is an actionable diagnosis of the same element
    // (location still has to match exactly), so the grader accepts all
    // three for these kinds.
    const bool degradation_family =
        (truth.kind == faults::FaultKind::kSlowDrain ||
         truth.kind == faults::FaultKind::kLoadGatedDelay) &&
        (culprit.cause == rca::CauseKind::kDelay ||
         culprit.cause == rca::CauseKind::kProcessRateDecrease ||
         culprit.cause == rca::CauseKind::kDrop);
    if (!degradation_family) return false;
  }
  if (truth.kind == faults::FaultKind::kMicroBurst) {
    return culprit.level == rca::CulpritLevel::kFlow &&
           culprit.flow == truth.flow;
  }
  // Port-level culprits must name the right port; switch/link-level match
  // by containing the faulty switch.
  if (culprit.level == rca::CulpritLevel::kPort) {
    return !culprit.location.empty() &&
           culprit.location.front() == truth.switch_id &&
           culprit.port == truth.port;
  }
  return std::find(culprit.location.begin(), culprit.location.end(),
                   truth.switch_id) != culprit.location.end();
}

std::optional<std::size_t> rank_of_truth(const rca::CulpritList& list,
                                         const faults::GroundTruth& truth,
                                         const MatchOptions& options) {
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (culprit_matches(list[i], truth, options)) return i + 1;
  }
  return std::nullopt;
}

double LocalizationStats::recall_at(std::size_t k) const {
  if (ranks_.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& rank : ranks_) {
    if (rank && *rank <= k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(ranks_.size());
}

double LocalizationStats::exam_score() const {
  if (ranks_.empty()) return kExamDefault;
  double total = 0.0;
  for (const auto& rank : ranks_) {
    if (rank && *rank <= kExamCutoff) {
      total += static_cast<double>(*rank - 1);
    } else {
      total += kExamDefault;
    }
  }
  return total / static_cast<double>(ranks_.size());
}

}  // namespace mars::metrics
