#pragma once
// The MARS P4 data plane (paper §4.2), as a PacketObserver over the
// simulated network. Per switch it implements:
//
//   source switch:  Ingress Table counting, PathID field insertion,
//                   one-telemetry-packet-per-flow-per-epoch marking;
//   every switch:   per-hop PathID update (CRC over {PathID, switch,
//                   in port, out port, control}), INT queue-depth
//                   accumulation, in-switch latency-threshold checks with
//                   the anomaly-suppression flag and a per-switch
//                   notification window;
//   sink switch:    Egress Table counting, telemetry extraction into the
//                   Ring Table, drop detection (count mismatch + epoch
//                   gap), INT header removal.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dataplane/notification.hpp"
#include "net/observer.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "telemetry/backend.hpp"
#include "telemetry/path_id.hpp"
#include "telemetry/tables.hpp"

namespace mars::dataplane {

struct PipelineConfig {
  telemetry::PathIdConfig path_id;
  /// Which export backend carries telemetry off the data plane (postcard
  /// ring tables, INT-MD stacks, or in-switch histograms) — see
  /// telemetry/backend.hpp. The common pipeline (tables, PathID, marking,
  /// detection, notifications) is backend-invariant.
  telemetry::BackendConfig backend;
  sim::Time epoch_period = telemetry::kDefaultEpochPeriod;
  /// A switch sends at most one notification per window (paper §4.2.2).
  /// Short enough that a congestion fault's HighLatency and Drop
  /// notifications both surface within one controller collection period.
  sim::Time notification_window = 150 * sim::kMillisecond;
  /// Count-mismatch tolerance: packets in flight across an epoch boundary
  /// make c_s and c_d differ by a few even when nothing dropped. The
  /// effective threshold is max(absolute, relative * c_s).
  std::uint32_t drop_count_threshold = 3;
  double drop_count_relative = 0.2;
  /// Consecutive mismatched epochs required before a Drop notification;
  /// filters the one-epoch deficit a pure delay fault produces.
  std::uint32_t drop_persistence = 2;
  /// Consecutive over-threshold telemetry packets of a flow required
  /// before a HighLatency notification; one-epoch ambient spikes pass,
  /// real faults persist.
  std::uint32_t latency_persistence = 2;
  std::size_t ring_capacity = 1024;
  /// Threshold used for flows the controller has not yet configured.
  sim::Time default_threshold = 10 * sim::kSecond;
  /// Sharded-substrate mode: observer callbacks run concurrently on shard
  /// threads, so every mutation must stay inside the packet or the
  /// per-switch state of ctx.id. The one cross-switch structure of the
  /// legacy path — the latency streak, written at the flagging hop — moves
  /// to the sink: the flagging hop only sets the in-band anomaly fields
  /// and the sink (which owns the flow's delivery order) keeps the streak
  /// and issues the notification on the flagging hop's behalf.
  bool sharded = false;
};

/// Cumulative data-plane overhead counters (Fig. 9 accounting).
struct PipelineOverheads {
  std::uint64_t telemetry_bytes = 0;   ///< INT/PathID bytes crossing links
  std::uint64_t notifications = 0;
  std::uint64_t notification_bytes = 0;
  std::uint64_t telemetry_packets_marked = 0;
  std::uint64_t latency_notifications = 0;
  std::uint64_t drop_notifications = 0;
  /// Notifications swallowed by the per-switch window.
  std::uint64_t window_suppressed = 0;
};

class MarsPipeline : public net::PacketObserver {
 public:
  using NotificationFn = std::function<void(const Notification&)>;

  MarsPipeline(std::size_t switch_count, PipelineConfig config,
               NotificationFn notify);

  // ---- control-plane facing API ----
  /// Install/replace a flow's dynamic latency threshold (P4Runtime write).
  void set_threshold(const net::FlowId& flow, sim::Time threshold);
  [[nodiscard]] sim::Time threshold(const net::FlowId& flow) const;
  /// Install the PathID conflict-resolution MAT computed by the registry.
  void set_control_mat(telemetry::ControlMat mat) { mat_ = std::move(mat); }

  [[nodiscard]] const telemetry::IngressTable& ingress_table(
      net::SwitchId sw) const {
    return state_[sw].ingress;
  }
  [[nodiscard]] const telemetry::EgressTable& egress_table(
      net::SwitchId sw) const {
    return state_[sw].egress;
  }
  /// Drain a sink switch's export store for diagnosis; leaves it intact
  /// (reads are register reads, not resets).
  [[nodiscard]] std::vector<telemetry::RtRecord> ring_snapshot(
      net::SwitchId sw) const {
    return backend_->drain(sw);
  }
  /// Wire bytes the control plane pays per drained record (backend
  /// dependent; Fig. 9 diagnosis accounting).
  [[nodiscard]] std::uint32_t record_wire_bytes() const {
    return backend_->record_wire_bytes();
  }
  /// The export backend (occupancy gauges, backend-specific evidence).
  [[nodiscard]] const telemetry::TelemetryBackend& backend() const {
    return *backend_;
  }

  /// Merged across switches (counters are kept per switch so shard
  /// threads never contend on them).
  [[nodiscard]] PipelineOverheads overheads() const;
  [[nodiscard]] const PipelineConfig& config() const { return config_; }

  // ---- observability (both optional; nullptr = zero overhead) ----
  /// Emit a virtual-time instant per notification sent to the controller.
  void set_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }
  /// Record each delivered telemetry packet's end-to-end latency into
  /// "mars.telemetry_latency_ns" on `registry` (nullptr detaches).
  void set_metrics(obs::MetricsRegistry* registry) {
    latency_hist_ =
        registry ? &registry->histogram("mars.telemetry_latency_ns") : nullptr;
  }

  // ---- PacketObserver ----
  void on_ingress(net::SwitchContext& ctx, net::Packet& pkt) override;
  void on_enqueue(net::SwitchContext& ctx, net::Packet& pkt, net::PortId out,
                  std::uint32_t queue_depth) override;
  void on_egress(net::SwitchContext& ctx, net::Packet& pkt, net::PortId out,
                 sim::Time hop_latency) override;
  void on_deliver(net::SwitchContext& ctx, net::Packet& pkt) override;
  void on_drop(net::SwitchContext& ctx, const net::Packet& pkt,
               net::PortId out) override;

 private:
  struct SwitchState {
    telemetry::IngressTable ingress;
    telemetry::EgressTable egress;
    sim::Time last_notification = -1;
    /// Latest telemetry epoch this switch has locally observed; advances
    /// drive TelemetryBackend::on_epoch_rollover.
    telemetry::EpochId last_epoch = 0;
    /// Per-flow telemetry epoch last seen at this sink (epoch-gap check).
    std::unordered_map<net::FlowId, telemetry::EpochId> last_seen_epoch;
    /// Consecutive count-mismatch epochs per flow (drop persistence).
    std::unordered_map<net::FlowId, std::uint32_t> mismatch_streak;
    /// Sharded mode: the latency streak, kept at the flow's sink (see
    /// PipelineConfig::sharded).
    std::unordered_map<net::FlowId, std::uint32_t> sink_latency_streak;
    /// Per-switch slice of the overhead counters (merged by overheads()).
    PipelineOverheads overheads;

    explicit SwitchState(sim::Time period) : ingress(period), egress(period) {}
  };

  void maybe_check_latency(net::SwitchContext& ctx, net::Packet& pkt,
                           bool at_sink);
  void notify(net::SwitchContext& ctx, Notification n);
  /// Fire the backend rollover hook when `sw`'s local epoch advances.
  void observe_epoch(net::SwitchId sw, sim::Time now);

  PipelineConfig config_;
  NotificationFn notify_fn_;
  std::unique_ptr<telemetry::TelemetryBackend> backend_;
  std::vector<SwitchState> state_;
  telemetry::ControlMat mat_;
  std::unordered_map<net::FlowId, sim::Time> thresholds_;
  /// Consecutive anomalous telemetry packets per flow. Incremented once
  /// per packet at the hop that first exceeds the threshold (the
  /// suppression flag guarantees once), reset when a packet reaches its
  /// sink clean. Conceptually each flow's counter lives where its
  /// anomalies surface; a single map keeps that bookkeeping simple.
  std::unordered_map<net::FlowId, std::uint32_t> latency_streak_;
  obs::SpanTracer* tracer_ = nullptr;
  obs::LogHistogram* latency_hist_ = nullptr;
};

}  // namespace mars::dataplane
