#include "dataplane/mars_pipeline.hpp"

#include <cassert>

#include "sim/simulator.hpp"

namespace mars::dataplane {

MarsPipeline::MarsPipeline(std::size_t switch_count, PipelineConfig config,
                           NotificationFn notify)
    : config_(config), notify_fn_(std::move(notify)),
      backend_(telemetry::make_backend(config_.backend, switch_count,
                                       config_.epoch_period,
                                       config_.ring_capacity)) {
  state_.reserve(switch_count);
  for (std::size_t i = 0; i < switch_count; ++i) {
    state_.emplace_back(config_.epoch_period);
  }
}

void MarsPipeline::observe_epoch(net::SwitchId sw, sim::Time now) {
  const telemetry::EpochId epoch =
      telemetry::epoch_of(now, config_.epoch_period);
  telemetry::EpochId& last = state_[sw].last_epoch;
  if (epoch > last) {
    last = epoch;
    backend_->on_epoch_rollover(sw, epoch, now);
  }
}

void MarsPipeline::set_threshold(const net::FlowId& flow,
                                 sim::Time threshold) {
  thresholds_[flow] = threshold;
}

sim::Time MarsPipeline::threshold(const net::FlowId& flow) const {
  const auto it = thresholds_.find(flow);
  return it != thresholds_.end() ? it->second : config_.default_threshold;
}

PipelineOverheads MarsPipeline::overheads() const {
  PipelineOverheads total;
  for (const SwitchState& st : state_) {
    total.telemetry_bytes += st.overheads.telemetry_bytes;
    total.notifications += st.overheads.notifications;
    total.notification_bytes += st.overheads.notification_bytes;
    total.telemetry_packets_marked += st.overheads.telemetry_packets_marked;
    total.latency_notifications += st.overheads.latency_notifications;
    total.drop_notifications += st.overheads.drop_notifications;
    total.window_suppressed += st.overheads.window_suppressed;
  }
  return total;
}

void MarsPipeline::on_ingress(net::SwitchContext& ctx, net::Packet& pkt) {
  // Every switch observes local epoch advances here (the one callback all
  // packets pass at every hop), driving backend rollover hooks.
  observe_epoch(ctx.id, ctx.sim.now());
  if (ctx.id != pkt.flow.source) return;
  SwitchState& st = state_[ctx.id];
  const sim::Time now = ctx.sim.now();

  // Source switch: count the packet and insert the PathID field.
  st.ingress.count_packet(pkt.flow, now);
  pkt.has_path_id = true;
  pkt.path_id = 0;

  // Mark at most one telemetry packet per flow per epoch (§4.2.1). The
  // marked packet carries the common in-band fields for every backend so
  // serialization timing stays backend-invariant (telemetry/backend.hpp).
  if (st.ingress.try_mark_telemetry(pkt.flow, now)) {
    net::IntHeader hdr;
    hdr.source_timestamp = now;
    hdr.last_epoch_count = st.ingress.last_epoch_count(pkt.flow, now);
    hdr.total_queue_depth = 0;
    hdr.epoch_id = telemetry::epoch_of(now, config_.epoch_period);
    pkt.telemetry = hdr;
    ++st.overheads.telemetry_packets_marked;
    backend_->on_marked(ctx, pkt);
  }
}

void MarsPipeline::on_enqueue(net::SwitchContext& ctx, net::Packet& pkt,
                              net::PortId out, std::uint32_t queue_depth) {
  if (!pkt.has_path_id) return;
  // Per-hop PathID update; MAT overrides the control word on conflicting
  // hops (§4.1).
  pkt.path_id = telemetry::update_path_id_with_mat(
      config_.path_id, mat_, pkt.path_id, ctx.id, pkt.ingress_port, out);
  if (pkt.telemetry) {
    // In-network aggregation: add this hop's queue depth (§4.2.1).
    pkt.telemetry->total_queue_depth += queue_depth;
  }
  backend_->on_hop_enqueue(ctx, pkt, out, queue_depth);
}

void MarsPipeline::maybe_check_latency(net::SwitchContext& ctx,
                                       net::Packet& pkt, bool at_sink) {
  if (!pkt.telemetry) return;
  if (config_.sharded) {
    // Flagging hop: decide in-band only (no shared-map writes — this runs
    // on the flagging switch's shard thread).
    if (!pkt.anomaly_flagged) {
      const sim::Time latency =
          ctx.sim.now() - pkt.telemetry->source_timestamp;
      if (latency > threshold(pkt.flow)) {
        pkt.anomaly_flagged = true;
        pkt.anomaly_reporter = ctx.id;
        pkt.anomaly_latency = latency;
      }
    }
    if (!at_sink) return;
    // Sink: the flow's streak lives here, updated in delivery order.
    SwitchState& st = state_[ctx.id];
    std::uint32_t& streak = st.sink_latency_streak[pkt.flow];
    if (!pkt.anomaly_flagged) {
      streak = 0;
      return;
    }
    if (++streak < config_.latency_persistence) return;
    Notification n;
    n.kind = Notification::Kind::kHighLatency;
    n.reporter = pkt.anomaly_reporter;
    n.flow = pkt.flow;
    n.when = ctx.sim.now();
    n.latency = pkt.anomaly_latency;
    n.threshold = threshold(pkt.flow);
    notify(ctx, n);
    return;
  }
  if (pkt.anomaly_flagged) return;  // an earlier hop already handled it
  const sim::Time latency = ctx.sim.now() - pkt.telemetry->source_timestamp;
  const sim::Time thr = threshold(pkt.flow);
  if (latency <= thr) {
    // A telemetry packet that reaches its sink clean breaks the streak.
    if (at_sink) latency_streak_[pkt.flow] = 0;
    return;
  }
  // Set the in-header flag so downstream hops stay quiet (§4.2.2).
  pkt.anomaly_flagged = true;
  // Require the anomaly to persist across telemetry packets before
  // notifying; single-epoch ambient queueing spikes stay local.
  std::uint32_t& streak = latency_streak_[pkt.flow];
  if (++streak < config_.latency_persistence) return;
  Notification n;
  n.kind = Notification::Kind::kHighLatency;
  n.reporter = ctx.id;
  n.flow = pkt.flow;
  n.when = ctx.sim.now();
  n.latency = latency;
  n.threshold = thr;
  notify(ctx, n);
}

void MarsPipeline::notify(net::SwitchContext& ctx, Notification n) {
  SwitchState& st = state_[ctx.id];
  n.origin = ctx.id;
  const sim::Time now = ctx.sim.now();
  // One notification per switch per window (§4.2.2).
  if (st.last_notification >= 0 &&
      now - st.last_notification < config_.notification_window) {
    ++st.overheads.window_suppressed;
    return;
  }
  st.last_notification = now;
  ++st.overheads.notifications;
  if (n.kind == Notification::Kind::kHighLatency) {
    ++st.overheads.latency_notifications;
  } else {
    ++st.overheads.drop_notifications;
  }
  st.overheads.notification_bytes += Notification::kWireBytes;
  if (tracer_ != nullptr) {
    obs::SpanArgs args{{"kind", kind_name(n.kind)},
                       {"reporter", std::uint64_t{n.reporter}},
                       {"flow", net::to_string(n.flow)}};
    if (n.kind == Notification::Kind::kHighLatency) {
      args.emplace_back("latency_ms", sim::to_seconds(n.latency) * 1e3);
      args.emplace_back("threshold_ms", sim::to_seconds(n.threshold) * 1e3);
    } else {
      args.emplace_back("epoch_gap", n.epoch_gap);
      args.emplace_back("dropped_estimate", n.dropped_estimate);
    }
    tracer_->instant("notification", "dataplane", now, std::move(args));
  }
  if (notify_fn_) notify_fn_(n);
}

void MarsPipeline::on_egress(net::SwitchContext& ctx, net::Packet& pkt,
                             net::PortId out, sim::Time hop_latency) {
  // Monitoring bytes occupy this link once per traversal (Fig. 9); what
  // they amount to is the backend's wire format.
  state_[ctx.id].overheads.telemetry_bytes +=
      backend_->on_hop_egress(ctx, pkt, out, hop_latency);
  maybe_check_latency(ctx, pkt, /*at_sink=*/false);
}

void MarsPipeline::on_drop(net::SwitchContext& ctx, const net::Packet& pkt,
                           net::PortId /*out*/) {
  backend_->on_drop(ctx, pkt);
}

void MarsPipeline::on_deliver(net::SwitchContext& ctx, net::Packet& pkt) {
  if (!pkt.has_path_id) return;
  SwitchState& st = state_[ctx.id];
  const sim::Time now = ctx.sim.now();

  // Final PathID hop: the sink's host-facing egress.
  pkt.path_id = telemetry::update_path_id_with_mat(
      config_.path_id, mat_, pkt.path_id, ctx.id, pkt.ingress_port,
      net::kHostPort);

  // Egress Table: per-(PathID, FlowID) counters for all packets (§4.2.2).
  st.egress.count_packet(pkt.path_id, pkt.flow, pkt.size_bytes, now);

  if (!pkt.telemetry) return;

  const net::IntHeader hdr = *pkt.telemetry;
  const sim::Time latency = now - hdr.source_timestamp;

  // Epoch-gap drop detection: missing telemetry packets mean whole epochs
  // were lost (§4.3.2).
  std::uint32_t gap = 0;
  if (const auto it = st.last_seen_epoch.find(pkt.flow);
      it != st.last_seen_epoch.end() && hdr.epoch_id > it->second + 1) {
    gap = hdr.epoch_id - it->second - 1;
  }
  st.last_seen_epoch[pkt.flow] = hdr.epoch_id;

  // Count-mismatch drop detection: source's last-epoch count vs the
  // sink's own last-epoch count for this flow (§4.3.2). A fault that only
  // delays packets shifts a few of them across one epoch boundary, which
  // looks like a single-epoch deficit — real loss persists — so the
  // mismatch must repeat before it is trusted.
  const std::uint32_t c_s = hdr.last_epoch_count;
  const std::uint32_t c_d = st.egress.flow_previous_packets(pkt.flow, now);
  const auto mismatch_threshold = std::max<std::uint32_t>(
      config_.drop_count_threshold,
      static_cast<std::uint32_t>(config_.drop_count_relative *
                                 static_cast<double>(c_s)));
  const bool mismatch = c_s > c_d && (c_s - c_d) > mismatch_threshold;
  std::uint32_t& streak = st.mismatch_streak[pkt.flow];
  streak = mismatch ? streak + 1 : 0;
  const bool count_drop = streak >= config_.drop_persistence;

  // Ring Table record (§4.2.2). Inserted before any notification so the
  // control plane's diagnosis snapshot includes the triggering evidence.
  telemetry::RtRecord rec;
  rec.flow = pkt.flow;
  rec.path_id = pkt.path_id;
  rec.epoch_id = hdr.epoch_id;
  rec.source_timestamp = hdr.source_timestamp;
  rec.sink_timestamp = now;
  rec.latency = latency;
  rec.total_queue_depth = hdr.total_queue_depth;
  rec.src_last_epoch_count = c_s;
  rec.sink_last_epoch_count = c_d;
  const auto path_now = st.egress.current(pkt.path_id, pkt.flow, now);
  rec.path_epoch_packets = path_now.packets;
  rec.path_epoch_bytes = path_now.bytes;
  rec.flow_epoch_packets = st.egress.flow_current_packets(pkt.flow, now);
  rec.epoch_gap = gap;
  const auto per_path = st.egress.flow_path_counts(pkt.flow, now);
  rec.path_count_n = static_cast<std::uint8_t>(
      std::min(per_path.size(), telemetry::RtRecord::kMaxPaths));
  for (std::uint8_t i = 0; i < rec.path_count_n; ++i) {
    rec.path_counts[i] = per_path[i];
  }
  backend_->on_sink_record(ctx, pkt, rec);
  if (latency_hist_ != nullptr && latency >= 0) {
    latency_hist_->record(static_cast<std::uint64_t>(latency));
  }

  if (gap > 0 || count_drop) {
    Notification n;
    n.kind = Notification::Kind::kDrop;
    n.reporter = ctx.id;
    n.flow = pkt.flow;
    n.when = now;
    n.epoch_gap = gap;
    n.dropped_estimate = c_s > c_d ? c_s - c_d : 0;
    notify(ctx, n);
  }
  maybe_check_latency(ctx, pkt, /*at_sink=*/true);

  // INT headers are removed at the sink; monitoring is transparent to
  // end hosts (§4.2.2).
  pkt.telemetry.reset();
}

}  // namespace mars::dataplane
