#pragma once
// Data-plane -> control-plane notification packets (paper §4.2.2, §4.3).

#include <cstdint>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace mars::dataplane {

struct Notification {
  enum class Kind : std::uint8_t { kHighLatency, kDrop };

  Kind kind = Kind::kHighLatency;
  net::SwitchId reporter = net::kInvalidSwitch;  ///< switch that triggered
  /// Switch that physically sent the packet (== reporter in legacy mode;
  /// in sharded mode latency notifications are issued at the sink on
  /// behalf of the flagging hop, so the sender is the sink). Not part of
  /// the 32-byte wire format — routing metadata for the simulator.
  net::SwitchId origin = net::kInvalidSwitch;
  net::FlowId flow;
  sim::Time when = 0;

  // kHighLatency details.
  sim::Time latency = 0;      ///< end-to-end latency observed so far
  sim::Time threshold = 0;    ///< the dynamic threshold that was exceeded

  // kDrop details.
  std::uint32_t epoch_gap = 0;         ///< missing telemetry epochs
  std::uint32_t dropped_estimate = 0;  ///< c_s - c_d

  /// Wire size of a notification packet (diagnosis bandwidth accounting).
  static constexpr std::uint32_t kWireBytes = 32;
};

[[nodiscard]] constexpr const char* kind_name(Notification::Kind kind) {
  return kind == Notification::Kind::kHighLatency ? "HighLatency" : "Drop";
}

}  // namespace mars::dataplane
