#include "net/topology_registry.hpp"

#include <stdexcept>

#include "net/fat_tree.hpp"
#include "net/leaf_spine.hpp"

namespace mars::net {

namespace {

std::vector<std::string> validate_fat_tree(const TopologySpec& spec) {
  std::vector<std::string> errors;
  if (spec.k < 4 || spec.k % 2 != 0) {
    errors.push_back("fat-tree arity k must be even and >= 4 (got " +
                     std::to_string(spec.k) + ")");
  }
  return errors;
}

BuiltFabric build_fat_tree_fabric(const TopologySpec& spec) {
  auto ft = build_fat_tree({.k = spec.k,
                            .edge_agg_gbps = spec.edge_gbps,
                            .agg_core_gbps = spec.core_gbps,
                            .propagation = spec.propagation});
  BuiltFabric fabric;
  fabric.topology = std::move(ft.topology);
  fabric.edge = std::move(ft.edge);
  fabric.core = std::move(ft.core);
  fabric.pods = spec.k;
  return fabric;
}

std::vector<std::string> validate_leaf_spine(const TopologySpec& spec) {
  std::vector<std::string> errors;
  if (spec.leaves < 2) {
    errors.push_back("leaf-spine needs at least 2 leaves (got " +
                     std::to_string(spec.leaves) + ")");
  }
  if (spec.spines < 1) {
    errors.push_back("leaf-spine needs at least 1 spine (got " +
                     std::to_string(spec.spines) + ")");
  }
  return errors;
}

BuiltFabric build_leaf_spine_fabric(const TopologySpec& spec) {
  auto ls = build_leaf_spine({.leaves = spec.leaves,
                              .spines = spec.spines,
                              .leaf_spine_gbps = spec.edge_gbps,
                              .propagation = spec.propagation});
  BuiltFabric fabric;
  fabric.topology = std::move(ls.topology);
  fabric.edge = std::move(ls.leaf);
  fabric.core = std::move(ls.spine);
  fabric.pods = 1;  // full mesh: no pod structure to honour
  return fabric;
}

std::vector<std::string> validate_common(const TopologySpec& spec) {
  std::vector<std::string> errors;
  if (spec.edge_gbps <= 0.0) {
    errors.push_back("edge link rate must be positive (got " +
                     std::to_string(spec.edge_gbps) + " Gbps)");
  }
  if (spec.core_gbps <= 0.0) {
    errors.push_back("core link rate must be positive (got " +
                     std::to_string(spec.core_gbps) + " Gbps)");
  }
  if (spec.propagation < 0) {
    errors.push_back("propagation delay must be non-negative");
  }
  return errors;
}

/// "fat-tree-16": the datacenter-scale fabric (320 switches, 16 pods)
/// used by the sharded-simulation scale benchmarks. The spec's `k` is
/// ignored — the name pins the arity, so scenario files can request the
/// big fabric without knowing fat-tree arithmetic.
BuiltFabric build_fat_tree_16_fabric(const TopologySpec& spec) {
  TopologySpec fixed = spec;
  fixed.k = 16;
  return build_fat_tree_fabric(fixed);
}

}  // namespace

TopologyRegistry& TopologyRegistry::instance() {
  static TopologyRegistry registry = [] {
    TopologyRegistry r;
    r.add("fat-tree", build_fat_tree_fabric, validate_fat_tree);
    r.add("fat-tree-16", build_fat_tree_16_fabric, nullptr);
    r.add("leaf-spine", build_leaf_spine_fabric, validate_leaf_spine);
    return r;
  }();
  return registry;
}

void TopologyRegistry::add(std::string name, Builder builder,
                           Validator validator) {
  for (auto& entry : entries_) {
    if (entry.name == name) {  // re-registration replaces
      entry.builder = std::move(builder);
      entry.validator = std::move(validator);
      return;
    }
  }
  entries_.push_back(
      Entry{std::move(name), std::move(builder), std::move(validator)});
}

const TopologyRegistry::Entry* TopologyRegistry::find(
    std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

bool TopologyRegistry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

std::vector<std::string> TopologyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.name);
  return out;
}

std::vector<std::string> TopologyRegistry::validate(
    const TopologySpec& spec) const {
  const Entry* entry = find(spec.name);
  if (entry == nullptr) {
    std::string known;
    for (const auto& e : entries_) {
      if (!known.empty()) known += ", ";
      known += e.name;
    }
    return {"unknown topology '" + spec.name + "' (known: " + known + ")"};
  }
  std::vector<std::string> errors = validate_common(spec);
  if (entry->validator) {
    auto extra = entry->validator(spec);
    errors.insert(errors.end(), extra.begin(), extra.end());
  }
  return errors;
}

BuiltFabric TopologyRegistry::build(const TopologySpec& spec) const {
  const auto errors = validate(spec);
  if (!errors.empty()) {
    std::string joined;
    for (const auto& e : errors) {
      if (!joined.empty()) joined += "; ";
      joined += e;
    }
    throw std::invalid_argument("topology spec invalid: " + joined);
  }
  return find(spec.name)->builder(spec);
}

}  // namespace mars::net
