#include "net/routing.hpp"

#include <cassert>
#include <deque>

#include "util/crc.hpp"

namespace mars::net {

RoutingTable::RoutingTable(const Topology& topology)
    : topology_(&topology), n_(topology.switch_count()) {
  dist_.assign(n_ * n_, -1);
  groups_.resize(n_ * n_);

  // BFS from every destination over the reversed (symmetric) graph gives
  // hop distances; a port is an ECMP member when its neighbor is one hop
  // closer to the destination.
  for (SwitchId dst = 0; dst < n_; ++dst) {
    std::deque<SwitchId> frontier{dst};
    dist_[index(dst, dst)] = 0;
    while (!frontier.empty()) {
      const SwitchId cur = frontier.front();
      frontier.pop_front();
      const int d = dist_[index(cur, dst)];
      for (const SwitchId nb : topology.neighbors(cur)) {
        if (dist_[index(nb, dst)] == -1) {
          dist_[index(nb, dst)] = d + 1;
          frontier.push_back(nb);
        }
      }
    }
    for (SwitchId at = 0; at < n_; ++at) {
      if (at == dst || dist_[index(at, dst)] == -1) continue;
      EcmpGroup& group = groups_[index(at, dst)];
      for (PortId p = 0; p < topology.port_count(at); ++p) {
        const SwitchId nb = topology.peer(at, p).neighbor;
        if (dist_[index(nb, dst)] == dist_[index(at, dst)] - 1) {
          group.members.push_back(EcmpMember{p, 1});
        }
      }
    }
  }
}

bool RoutingTable::select_port(SwitchId at, SwitchId dst,
                               std::uint32_t flow_hash, PortId& out) const {
  const EcmpGroup& g = group(at, dst);
  if (g.members.empty()) return false;
  const std::uint32_t total = g.total_weight();
  assert(total > 0);
  // Hash {flow, switch} so different switches decorrelate their choices —
  // this is the "imperfect hash" a real ECMP deployment uses.
  const std::uint32_t words[2] = {flow_hash, at};
  const std::uint32_t h = util::crc32_words(words);
  std::uint32_t r = h % total;
  for (const auto& m : g.members) {
    if (r < m.weight) {
      out = m.port;
      return true;
    }
    r -= m.weight;
  }
  out = g.members.back().port;  // unreachable with consistent weights
  return true;
}

std::vector<SwitchPath> RoutingTable::enumerate_paths(SwitchId src,
                                                      SwitchId dst) const {
  std::vector<SwitchPath> result;
  if (dist_[index(src, dst)] == -1) return result;
  SwitchPath stack{src};
  // DFS restricted to shortest-path DAG edges.
  auto dfs = [&](auto&& self, SwitchId cur) -> void {
    if (cur == dst) {
      result.push_back(stack);
      return;
    }
    for (PortId p = 0; p < topology_->port_count(cur); ++p) {
      const SwitchId nb = topology_->peer(cur, p).neighbor;
      if (dist_[index(nb, dst)] == dist_[index(cur, dst)] - 1) {
        stack.push_back(nb);
        self(self, nb);
        stack.pop_back();
      }
    }
  };
  dfs(dfs, src);
  return result;
}

std::vector<SwitchPath> RoutingTable::enumerate_edge_paths_from(
    SwitchId src) const {
  std::vector<SwitchPath> all;
  for (const SwitchId dst : topology_->switches_in_layer(Layer::kEdge)) {
    if (src == dst) continue;
    auto paths = enumerate_paths(src, dst);
    all.insert(all.end(), std::make_move_iterator(paths.begin()),
               std::make_move_iterator(paths.end()));
  }
  return all;
}

std::vector<SwitchPath> RoutingTable::enumerate_edge_paths() const {
  std::vector<SwitchPath> all;
  for (const SwitchId src : topology_->switches_in_layer(Layer::kEdge)) {
    auto paths = enumerate_edge_paths_from(src);
    all.insert(all.end(), std::make_move_iterator(paths.begin()),
               std::make_move_iterator(paths.end()));
  }
  return all;
}

}  // namespace mars::net
