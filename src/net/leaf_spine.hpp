#pragma once
// Two-tier leaf-spine (folded Clos) builder. MARS's mechanisms are
// topology-agnostic — PathID registration, ECMP signatures and SBFL only
// need a Topology + RoutingTable — so the library ships a second fabric
// shape for generalization tests and experiments beyond the paper's
// fat-tree. Leaves play the edge (source/sink) role; spines are the core.

#include <vector>

#include "net/topology.hpp"

namespace mars::net {

struct LeafSpineConfig {
  int leaves = 8;
  int spines = 4;
  double leaf_spine_gbps = 10.0;
  sim::Time propagation = 1'000;
};

struct LeafSpine {
  Topology topology;
  std::vector<SwitchId> leaf;   ///< edge layer (sources/sinks)
  std::vector<SwitchId> spine;  ///< core layer
};

/// Build a full-mesh leaf-spine fabric. Every leaf connects to every
/// spine; all leaf pairs have exactly `spines` two-hop paths.
[[nodiscard]] LeafSpine build_leaf_spine(const LeafSpineConfig& config);

}  // namespace mars::net
