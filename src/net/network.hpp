#pragma once
// The assembled network: topology + routing + switches over a simulator,
// with monitoring observers attached. This is the substrate equivalent of
// the paper's Mininet/BMv2 testbed.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/observer.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "net/routing.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mars::net {

/// Aggregate substrate statistics (ground truth for conservation checks).
struct NetworkStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t unroutable = 0;
};

class Network {
 public:
  /// The topology is copied; routing tables are built immediately.
  Network(sim::Simulator& sim, Topology topology);

  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] RoutingTable& routing() { return routing_; }
  [[nodiscard]] const RoutingTable& routing() const { return routing_; }
  [[nodiscard]] Switch& node(SwitchId id) { return *switches_[id]; }
  [[nodiscard]] const Switch& node(SwitchId id) const { return *switches_[id]; }
  [[nodiscard]] std::size_t switch_count() const { return switches_.size(); }

  /// Attach a monitoring system. Observers are invoked in attach order.
  void add_observer(PacketObserver& observer) {
    observers_.push_back(&observer);
  }

  /// Inject a packet at its source switch at the current simulation time.
  /// `flow_hash` carries the per-flow entropy a real switch would take from
  /// the 5-tuple. Returns the assigned packet id.
  std::uint64_t inject(FlowId flow, std::uint32_t flow_hash,
                       std::uint32_t size_bytes);

  /// Delivery callback invoked after observers at the sink switch.
  using DeliveryFn = std::function<void(const Packet&, sim::Time)>;
  void set_delivery_callback(DeliveryFn fn) { on_delivery_ = std::move(fn); }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

  /// Fraction of capacity used on each direction of each link since t=0.
  /// Returned per (link index, direction a->b then b->a), labelled by the
  /// layer of the *upstream* switch.
  struct LinkUtilization {
    std::size_t link = 0;
    SwitchId upstream = kInvalidSwitch;
    Layer upstream_layer = Layer::kEdge;
    double utilization = 0.0;
  };
  [[nodiscard]] std::vector<LinkUtilization> link_utilization() const;

  /// Pool parking packets in flight across links (introspection/tests).
  [[nodiscard]] const PacketPool& packet_pool() const { return pool_; }

  // ---- internal API used by Switch ----
  void forward_to_neighbor(SwitchId from, PortId from_port, Packet&& pkt,
                           sim::Time extra_delay);
  void deliver(Switch& sink, Packet&& pkt);
  /// Reclaim the buffers of a packet leaving the network without being
  /// delivered (dropped or unroutable).
  void recycle_dead(Packet&& pkt) {
    pool_.recycle_path(std::move(pkt.true_path));
  }
  void count_drop() { ++stats_.dropped; }
  void count_unroutable() { ++stats_.unroutable; }
  [[nodiscard]] std::vector<PacketObserver*>& observers() {
    return observers_;
  }
  /// Link rate (bits/ns == Gbps) behind a switch port.
  [[nodiscard]] double port_rate_gbps(SwitchId sw, PortId port) const;

 private:
  /// Per-port link facts, flattened out of Topology so the per-hop path
  /// (forward_to_neighbor) and per-service path (port_rate_gbps) read one
  /// cache line instead of chasing peer()/links() indirections.
  struct PortLink {
    SwitchId neighbor = kInvalidSwitch;
    PortId neighbor_port = 0;
    sim::Time propagation = 0;
    double gbps = 0.0;
  };

  sim::Simulator* sim_;
  Topology topology_;
  RoutingTable routing_;
  std::vector<std::vector<PortLink>> port_links_;  // [switch][port]
  std::vector<std::unique_ptr<Switch>> switches_;
  PacketPool pool_;
  std::vector<PacketObserver*> observers_;
  DeliveryFn on_delivery_;
  NetworkStats stats_;
  std::uint64_t next_packet_id_ = 1;
};

}  // namespace mars::net
