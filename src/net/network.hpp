#pragma once
// The assembled network: topology + routing + switches over a simulator,
// with monitoring observers attached. This is the substrate equivalent of
// the paper's Mininet/BMv2 testbed.
//
// Two execution modes share the same forwarding logic:
//
//   * legacy (single simulator): every switch binds a plain Lane on the
//     one queue — byte-identical to pre-shard releases;
//   * sharded: switches bind keyed Lanes on their shard's simulator.
//     Same-shard hops schedule keyed events directly; hops that cross a
//     shard boundary stage a PacketMail{arrival time, lane key, packet}
//     in a per-(src shard, dst shard) mailbox, drained single-threaded at
//     the barrier into the destination queue. Because the mail carries the
//     sender's lane key, the destination pops the exact event order a
//     single-shard run would — the determinism invariant.
//
// In sharded mode each shard owns its own PacketPool and NetworkStats
// (cache-line padded; stats() merges), and packet ids are per-source
// (source id << 40 | per-source seq) so id assignment never needs a
// cross-shard counter.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/observer.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "net/partition.hpp"
#include "net/routing.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "sim/lane.hpp"
#include "sim/simulator.hpp"

namespace mars::sim {
class ShardedSimulator;
}  // namespace mars::sim

namespace mars::net {

/// Aggregate substrate statistics (ground truth for conservation checks).
struct NetworkStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t unroutable = 0;
};

class Network {
 public:
  /// The topology is copied; routing tables are built immediately.
  Network(sim::Simulator& sim, Topology topology);

  /// Sharded substrate: every switch binds a keyed lane on the shard the
  /// partition assigns it to; registers the mailbox drain hook on the
  /// sharded simulator. The partition must cover this topology.
  Network(sim::ShardedSimulator& sharded, Topology topology,
          const Partition& partition);

  /// The control-plane simulator: the only simulator in legacy mode, the
  /// global (single-threaded, between-windows) domain in sharded mode.
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] RoutingTable& routing() { return routing_; }
  [[nodiscard]] const RoutingTable& routing() const { return routing_; }
  [[nodiscard]] Switch& node(SwitchId id) { return *switches_[id]; }
  [[nodiscard]] const Switch& node(SwitchId id) const { return *switches_[id]; }
  [[nodiscard]] std::size_t switch_count() const { return switches_.size(); }

  // ---- sharded-mode introspection ----
  [[nodiscard]] bool is_sharded() const { return sharded_ != nullptr; }
  [[nodiscard]] sim::ShardedSimulator* sharded() { return sharded_; }
  [[nodiscard]] int shard_of(SwitchId sw) const {
    return shard_of_.empty() ? 0 : shard_of_[sw];
  }
  /// A keyed lane for the flow generator of flow `flow_index` homed at
  /// `source`, on the source's shard. Entity ids switch_count()+index
  /// never collide with switch lanes. Legacy mode returns a plain lane.
  [[nodiscard]] sim::Lane flow_lane(SwitchId source, std::size_t flow_index);

  /// Attach a monitoring system. Observers are invoked in attach order.
  void add_observer(PacketObserver& observer) {
    observers_.push_back(&observer);
  }

  /// Inject a packet at its source switch at the current simulation time.
  /// `flow_hash` carries the per-flow entropy a real switch would take from
  /// the 5-tuple. Returns the assigned packet id. In sharded mode this must
  /// run on the source's shard (flow arrival events do) or between windows.
  std::uint64_t inject(FlowId flow, std::uint32_t flow_hash,
                       std::uint32_t size_bytes);

  /// Delivery callback invoked after observers at the sink switch.
  using DeliveryFn = std::function<void(const Packet&, sim::Time)>;
  void set_delivery_callback(DeliveryFn fn) { on_delivery_ = std::move(fn); }

  /// Aggregate counters; merged across shards in sharded mode.
  [[nodiscard]] NetworkStats stats() const;

  /// Fraction of capacity used on each direction of each link since t=0.
  /// Returned per (link index, direction a->b then b->a), labelled by the
  /// layer of the *upstream* switch.
  struct LinkUtilization {
    std::size_t link = 0;
    SwitchId upstream = kInvalidSwitch;
    Layer upstream_layer = Layer::kEdge;
    double utilization = 0.0;
  };
  [[nodiscard]] std::vector<LinkUtilization> link_utilization() const;

  /// Pool parking packets in flight across links (introspection/tests;
  /// legacy mode — sharded mode pools per shard).
  [[nodiscard]] const PacketPool& packet_pool() const { return pool_; }

  /// Packets parked across links right now, summed over every pool.
  [[nodiscard]] std::size_t pool_in_flight() const;
  /// High-water mark of parked packets (pool arenas only grow), summed
  /// over every pool — the memory footprint of in-flight traffic.
  [[nodiscard]] std::size_t pool_peak_in_flight() const;

  /// Cross-shard packet-mailbox accounting (sharded mode; all-zero in
  /// legacy mode). One "drain" is a barrier-round visit that moved at
  /// least one mail; `batch_hist` buckets mails-per-drain by log2, so a
  /// fat tail means barriers move bursts rather than a steady trickle.
  struct MailboxStats {
    static constexpr std::size_t kHistBuckets = 16;
    std::uint64_t drains = 0;      ///< barrier rounds that moved mail
    std::uint64_t total_mail = 0;  ///< packets moved across shards
    std::uint64_t max_batch = 0;   ///< largest single-round volume
    std::array<std::uint64_t, kHistBuckets> batch_hist{};
  };
  [[nodiscard]] const MailboxStats& mailbox_stats() const {
    return mailbox_stats_;
  }

  // ---- internal API used by Switch ----
  void forward_to_neighbor(SwitchId from, PortId from_port, Packet&& pkt,
                           sim::Time extra_delay);
  void deliver(Switch& sink, Packet&& pkt);
  /// Reclaim the buffers of a packet leaving the network without being
  /// delivered (dropped or unroutable) at switch `at`.
  void recycle_dead(SwitchId at, Packet&& pkt) {
    pool_for(at).recycle_path(std::move(pkt.true_path));
  }
  void count_drop(SwitchId at) { ++stats_for(at).dropped; }
  void count_unroutable(SwitchId at) { ++stats_for(at).unroutable; }
  [[nodiscard]] std::vector<PacketObserver*>& observers() {
    return observers_;
  }
  /// Link rate (bits/ns == Gbps) behind a switch port.
  [[nodiscard]] double port_rate_gbps(SwitchId sw, PortId port) const;

 private:
  /// Per-port link facts, flattened out of Topology so the per-hop path
  /// (forward_to_neighbor) and per-service path (port_rate_gbps) read one
  /// cache line instead of chasing peer()/links() indirections.
  struct PortLink {
    SwitchId neighbor = kInvalidSwitch;
    PortId neighbor_port = 0;
    sim::Time propagation = 0;
    double gbps = 0.0;
  };

  /// A cross-shard hop staged until the next barrier: arrival time and
  /// the sender's lane key travel with the packet so the destination
  /// queue orders it exactly as a single-shard run would.
  struct PacketMail {
    sim::Time at = 0;
    std::uint64_t key = 0;
    SwitchId dst = kInvalidSwitch;
    Packet pkt;
  };

  /// Per-shard hot state, padded so shards never share a cache line.
  struct alignas(64) ShardState {
    PacketPool pool;
    NetworkStats stats;
  };

  void wire_topology();
  /// Registered as the sharded simulator's drain hook; runs
  /// single-threaded at every barrier.
  void drain_mailboxes();
  void receive_parked(SwitchId dst, Packet* slot);

  [[nodiscard]] NetworkStats& stats_for(SwitchId sw) {
    return sharded_ != nullptr ? shard_state_[shard_of_[sw]].stats : stats_;
  }
  [[nodiscard]] PacketPool& pool_for(SwitchId sw) {
    return sharded_ != nullptr ? shard_state_[shard_of_[sw]].pool : pool_;
  }
  [[nodiscard]] std::vector<PacketMail>& mailbox(int src_shard,
                                                 int dst_shard) {
    return mailbox_[static_cast<std::size_t>(src_shard) * shard_state_.size() +
                    static_cast<std::size_t>(dst_shard)];
  }

  sim::Simulator* sim_;
  Topology topology_;
  RoutingTable routing_;
  std::vector<std::vector<PortLink>> port_links_;  // [switch][port]
  std::vector<std::unique_ptr<Switch>> switches_;
  PacketPool pool_;
  std::vector<PacketObserver*> observers_;
  DeliveryFn on_delivery_;
  NetworkStats stats_;
  std::uint64_t next_packet_id_ = 1;

  // ---- sharded mode ----
  sim::ShardedSimulator* sharded_ = nullptr;
  std::vector<int> shard_of_;                   // per switch
  std::vector<ShardState> shard_state_;         // per shard
  std::vector<std::vector<PacketMail>> mailbox_;  // [src shard][dst shard]
  std::vector<std::uint64_t> packet_seq_;       // per source switch
  MailboxStats mailbox_stats_;
};

}  // namespace mars::net
