#include "net/network.hpp"

#include <cassert>
#include <memory>
#include <utility>

namespace mars::net {

Network::Network(sim::Simulator& sim, Topology topology)
    : sim_(&sim), topology_(std::move(topology)), routing_(topology_) {
  port_links_.resize(topology_.switch_count());
  switches_.reserve(topology_.switch_count());
  for (SwitchId id = 0; id < topology_.switch_count(); ++id) {
    auto& links = port_links_[id];
    links.resize(topology_.port_count(id));
    for (PortId p = 0; p < links.size(); ++p) {
      const auto& peer = topology_.peer(id, p);
      const Link& link = topology_.links()[peer.link];
      links[p] = PortLink{peer.neighbor, peer.neighbor_port,
                          link.propagation, link.gbps};
    }
    switches_.push_back(std::make_unique<Switch>(
        *this, id, topology_.layer(id), topology_.port_count(id)));
    for (PortId p = 0; p < links.size(); ++p) {
      switches_.back()->set_port_rate(p, links[p].gbps);
    }
  }
}

std::uint64_t Network::inject(FlowId flow, std::uint32_t flow_hash,
                              std::uint32_t size_bytes) {
  assert(flow.source < switch_count() && flow.sink < switch_count());
  Packet pkt;
  pkt.id = next_packet_id_++;
  pkt.flow = flow;
  pkt.flow_hash = flow_hash;
  pkt.size_bytes = size_bytes;
  pkt.created = sim_->now();
  pkt.true_path = pool_.take_path();
  const std::uint64_t id = pkt.id;
  ++stats_.injected;
  switches_[flow.source]->receive(std::move(pkt));
  return id;
}

void Network::forward_to_neighbor(SwitchId from, PortId from_port,
                                  Packet&& pkt, sim::Time extra_delay) {
  const PortLink& link = port_links_[from][from_port];
  const sim::Time prop = link.propagation;
  pkt.ingress_port = link.neighbor_port;
  // Park the packet in a pool slot; the link event carries only the raw
  // slot pointer, so the closure stays inside the inline buffer and the
  // hop costs no allocation (the old path make_shared'd every hop).
  Packet* slot = pool_.acquire(std::move(pkt));
  const SwitchId next = link.neighbor;
  auto hop = [this, next, slot] {
    switches_[next]->receive(std::move(*slot));
    pool_.release(slot);
  };
  static_assert(sim::event_fn_fits_inline<decltype(hop)>,
                "link-hop closure must fit the inline event buffer");
  sim_->schedule_in(prop + extra_delay, std::move(hop));
}

void Network::deliver(Switch& sink, Packet&& pkt) {
  if (!observers_.empty()) {
    SwitchContext ctx{*sim_, sink, sink.id(), sink.layer()};
    for (auto* obs : observers_) obs->on_deliver(ctx, pkt);
  }
  ++stats_.delivered;
  if (on_delivery_) on_delivery_(pkt, sim_->now());
  pool_.recycle_path(std::move(pkt.true_path));
}

double Network::port_rate_gbps(SwitchId sw, PortId port) const {
  return port_links_[sw][port].gbps;
}

std::vector<Network::LinkUtilization> Network::link_utilization() const {
  std::vector<LinkUtilization> out;
  const sim::Time now = sim_->now();
  if (now <= 0) return out;
  for (std::size_t i = 0; i < topology_.links().size(); ++i) {
    const Link& link = topology_.links()[i];
    for (const LinkEnd& end : {link.a, link.b}) {
      const auto& counters = switches_[end.sw]->counters(end.port);
      out.push_back(LinkUtilization{
          i, end.sw, topology_.layer(end.sw),
          static_cast<double>(counters.busy_time) / static_cast<double>(now)});
    }
  }
  return out;
}

}  // namespace mars::net
