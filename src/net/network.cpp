#include "net/network.hpp"

#include <cassert>
#include <memory>
#include <utility>

namespace mars::net {

Network::Network(sim::Simulator& sim, Topology topology)
    : sim_(&sim), topology_(std::move(topology)), routing_(topology_) {
  switches_.reserve(topology_.switch_count());
  for (SwitchId id = 0; id < topology_.switch_count(); ++id) {
    switches_.push_back(std::make_unique<Switch>(
        *this, id, topology_.layer(id), topology_.port_count(id)));
  }
}

std::uint64_t Network::inject(FlowId flow, std::uint32_t flow_hash,
                              std::uint32_t size_bytes) {
  assert(flow.source < switch_count() && flow.sink < switch_count());
  Packet pkt;
  pkt.id = next_packet_id_++;
  pkt.flow = flow;
  pkt.flow_hash = flow_hash;
  pkt.size_bytes = size_bytes;
  pkt.created = sim_->now();
  const std::uint64_t id = pkt.id;
  ++stats_.injected;
  switches_[flow.source]->receive(std::move(pkt));
  return id;
}

void Network::forward_to_neighbor(SwitchId from, PortId from_port, Packet pkt,
                                  sim::Time extra_delay) {
  const auto& peer = topology_.peer(from, from_port);
  const sim::Time prop = topology_.links()[peer.link].propagation;
  pkt.ingress_port = peer.neighbor_port;
  auto carried = std::make_shared<Packet>(std::move(pkt));
  const SwitchId next = peer.neighbor;
  sim_->schedule_in(prop + extra_delay, [this, next, carried] {
    switches_[next]->receive(std::move(*carried));
  });
}

void Network::deliver(Switch& sink, Packet pkt) {
  SwitchContext ctx{*sim_, sink, sink.id(), sink.layer()};
  for (auto* obs : observers_) obs->on_deliver(ctx, pkt);
  ++stats_.delivered;
  if (on_delivery_) on_delivery_(pkt, sim_->now());
}

double Network::port_rate_gbps(SwitchId sw, PortId port) const {
  const auto& peer = topology_.peer(sw, port);
  return topology_.links()[peer.link].gbps;
}

std::vector<Network::LinkUtilization> Network::link_utilization() const {
  std::vector<LinkUtilization> out;
  const sim::Time now = sim_->now();
  if (now <= 0) return out;
  for (std::size_t i = 0; i < topology_.links().size(); ++i) {
    const Link& link = topology_.links()[i];
    for (const LinkEnd& end : {link.a, link.b}) {
      const auto& counters = switches_[end.sw]->counters(end.port);
      out.push_back(LinkUtilization{
          i, end.sw, topology_.layer(end.sw),
          static_cast<double>(counters.busy_time) / static_cast<double>(now)});
    }
  }
  return out;
}

}  // namespace mars::net
