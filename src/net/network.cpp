#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "sim/sharded.hpp"

namespace mars::net {

Network::Network(sim::Simulator& sim, Topology topology)
    : sim_(&sim), topology_(std::move(topology)), routing_(topology_) {
  wire_topology();
  for (auto& sw : switches_) sw->bind_lane(sim::Lane::plain(sim));
}

Network::Network(sim::ShardedSimulator& sharded, Topology topology,
                 const Partition& partition)
    : sim_(&sharded.global()),
      topology_(std::move(topology)),
      routing_(topology_),
      sharded_(&sharded),
      shard_of_(partition.shard_of) {
  assert(shard_of_.size() == topology_.switch_count());
  assert(partition.shards <= sharded.shard_count());
  wire_topology();
  shard_state_ = std::vector<ShardState>(
      static_cast<std::size_t>(sharded.shard_count()));
  mailbox_.resize(shard_state_.size() * shard_state_.size());
  packet_seq_.assign(switch_count(), 0);
  for (auto& sw : switches_) {
    sw->bind_lane(sim::Lane::keyed(sharded.shard(shard_of_[sw->id()]),
                                   sw->id()));
  }
  sharded.set_drain_hook([this] { drain_mailboxes(); });
}

void Network::wire_topology() {
  port_links_.resize(topology_.switch_count());
  switches_.reserve(topology_.switch_count());
  for (SwitchId id = 0; id < topology_.switch_count(); ++id) {
    auto& links = port_links_[id];
    links.resize(topology_.port_count(id));
    for (PortId p = 0; p < links.size(); ++p) {
      const auto& peer = topology_.peer(id, p);
      const Link& link = topology_.links()[peer.link];
      links[p] = PortLink{peer.neighbor, peer.neighbor_port,
                          link.propagation, link.gbps};
    }
    switches_.push_back(std::make_unique<Switch>(
        *this, id, topology_.layer(id), topology_.port_count(id)));
    for (PortId p = 0; p < links.size(); ++p) {
      switches_.back()->set_port_rate(p, links[p].gbps);
    }
  }
}

sim::Lane Network::flow_lane(SwitchId source, std::size_t flow_index) {
  if (sharded_ == nullptr) return sim::Lane::plain(*sim_);
  return sim::Lane::keyed(
      sharded_->shard(shard_of_[source]),
      static_cast<std::uint64_t>(switch_count()) + flow_index);
}

std::uint64_t Network::inject(FlowId flow, std::uint32_t flow_hash,
                              std::uint32_t size_bytes) {
  assert(flow.source < switch_count() && flow.sink < switch_count());
  Packet pkt;
  pkt.flow = flow;
  pkt.flow_hash = flow_hash;
  pkt.size_bytes = size_bytes;
  if (sharded_ != nullptr) {
    // Per-source ids keep assignment shard-local; the source's shard clock
    // is the injection time (flow arrival events run on that shard).
    pkt.id = (static_cast<std::uint64_t>(flow.source) << 40) |
             ++packet_seq_[flow.source];
    pkt.created = switches_[flow.source]->lane().now();
    pkt.true_path = pool_for(flow.source).take_path();
  } else {
    pkt.id = next_packet_id_++;
    pkt.created = sim_->now();
    pkt.true_path = pool_.take_path();
  }
  const std::uint64_t id = pkt.id;
  ++stats_for(flow.source).injected;
  switches_[flow.source]->receive(std::move(pkt));
  return id;
}

void Network::forward_to_neighbor(SwitchId from, PortId from_port,
                                  Packet&& pkt, sim::Time extra_delay) {
  const PortLink& link = port_links_[from][from_port];
  pkt.ingress_port = link.neighbor_port;
  const SwitchId next = link.neighbor;

  if (sharded_ != nullptr) {
    sim::Lane& lane = switches_[from]->lane();
    const sim::Time at = lane.now() + link.propagation + extra_delay;
    const std::uint64_t key = lane.next_key();
    const int src_shard = shard_of_[from];
    const int dst_shard = shard_of_[next];
    if (src_shard != dst_shard) {
      // Boundary hop: stage for the barrier drain. link.propagation >=
      // lookahead (validated), so `at` is provably outside the window
      // currently running on the destination shard.
      mailbox(src_shard, dst_shard)
          .push_back(PacketMail{at, key, next, std::move(pkt)});
      return;
    }
    Packet* slot = shard_state_[src_shard].pool.acquire(std::move(pkt));
    auto hop = [this, next, slot] { receive_parked(next, slot); };
    static_assert(sim::event_fn_fits_inline<decltype(hop)>,
                  "link-hop closure must fit the inline event buffer");
    lane.simulator().schedule_at_keyed(at, key, std::move(hop));
    return;
  }

  // Park the packet in a pool slot; the link event carries only the raw
  // slot pointer, so the closure stays inside the inline buffer and the
  // hop costs no allocation (the old path make_shared'd every hop).
  Packet* slot = pool_.acquire(std::move(pkt));
  auto hop = [this, next, slot] {
    switches_[next]->receive(std::move(*slot));
    pool_.release(slot);
  };
  static_assert(sim::event_fn_fits_inline<decltype(hop)>,
                "link-hop closure must fit the inline event buffer");
  sim_->schedule_in(link.propagation + extra_delay, std::move(hop));
}

void Network::receive_parked(SwitchId dst, Packet* slot) {
  PacketPool& pool = shard_state_[shard_of_[dst]].pool;
  switches_[dst]->receive(std::move(*slot));
  pool.release(slot);
}

void Network::drain_mailboxes() {
  // Single-threaded (barrier). Visit order is irrelevant for determinism —
  // each mail carries its own (time, key) — but keep it fixed anyway.
  std::uint64_t batch = 0;
  for (auto& box : mailbox_) {
    batch += box.size();
    for (PacketMail& mail : box) {
      const SwitchId dst = mail.dst;
      const int dst_shard = shard_of_[dst];
      Packet* slot = shard_state_[dst_shard].pool.acquire(std::move(mail.pkt));
      auto hop = [this, dst, slot] { receive_parked(dst, slot); };
      static_assert(sim::event_fn_fits_inline<decltype(hop)>,
                    "mailbox-hop closure must fit the inline event buffer");
      sharded_->shard(dst_shard).schedule_at_keyed(mail.at, mail.key,
                                                   std::move(hop));
    }
    // clear(), not shrink: mail slots (and the pooled true_path buffers
    // their packets carry) are reused, so steady state is alloc-free.
    box.clear();
  }
  if (batch > 0) {
    ++mailbox_stats_.drains;
    mailbox_stats_.total_mail += batch;
    mailbox_stats_.max_batch = std::max(mailbox_stats_.max_batch, batch);
    std::size_t b = 0;
    for (std::uint64_t n = batch;
         n > 0 && b + 1 < MailboxStats::kHistBuckets; n >>= 1) {
      ++b;
    }
    ++mailbox_stats_.batch_hist[b];
  }
}

std::size_t Network::pool_in_flight() const {
  std::size_t total = pool_.in_flight();
  for (const auto& s : shard_state_) total += s.pool.in_flight();
  return total;
}

std::size_t Network::pool_peak_in_flight() const {
  // slot_count() is the arena high-water mark: slots are only ever added
  // (never shrunk), one per peak concurrent in-flight packet.
  std::size_t total = pool_.slot_count();
  for (const auto& s : shard_state_) total += s.pool.slot_count();
  return total;
}

void Network::deliver(Switch& sink, Packet&& pkt) {
  sim::Simulator& sim = sink.lane().simulator();
  if (!observers_.empty()) {
    SwitchContext ctx{sim, sink, sink.id(), sink.layer()};
    for (auto* obs : observers_) obs->on_deliver(ctx, pkt);
  }
  ++stats_for(sink.id()).delivered;
  if (on_delivery_) on_delivery_(pkt, sim.now());
  pool_for(sink.id()).recycle_path(std::move(pkt.true_path));
}

NetworkStats Network::stats() const {
  if (sharded_ == nullptr) return stats_;
  NetworkStats total;
  for (const ShardState& s : shard_state_) {
    total.injected += s.stats.injected;
    total.delivered += s.stats.delivered;
    total.dropped += s.stats.dropped;
    total.unroutable += s.stats.unroutable;
  }
  return total;
}

double Network::port_rate_gbps(SwitchId sw, PortId port) const {
  return port_links_[sw][port].gbps;
}

std::vector<Network::LinkUtilization> Network::link_utilization() const {
  std::vector<LinkUtilization> out;
  const sim::Time now = sim_->now();
  if (now <= 0) return out;
  for (std::size_t i = 0; i < topology_.links().size(); ++i) {
    const Link& link = topology_.links()[i];
    for (const LinkEnd& end : {link.a, link.b}) {
      const auto& counters = switches_[end.sw]->counters(end.port);
      out.push_back(LinkUtilization{
          i, end.sw, topology_.layer(end.sw),
          static_cast<double>(counters.busy_time) / static_cast<double>(now)});
    }
  }
  return out;
}

}  // namespace mars::net
