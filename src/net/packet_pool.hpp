#pragma once
// Free-list pool for packets in flight across links, plus recycling of
// true_path buffers.
//
// Network::forward_to_neighbor used to wrap every hop in
// std::make_shared<Packet>: one control-block allocation per hop per
// packet. The pool instead parks the packet in a stable arena slot and the
// link event captures the raw slot pointer (which fits the event's inline
// closure buffer). Ownership rules:
//
//   * acquire() parks a packet; the slot belongs to the scheduled link
//     event until it fires.
//   * The event moves the packet out (Switch::receive takes an rvalue) and
//     must then call release() to return the slot.
//   * Slots are never handed to application code; addresses are stable
//     (deque arena) for the lifetime of the pool.
//   * If the simulation ends with events still pending, parked packets are
//     simply destroyed with the pool — nothing leaks.
//
// take_path()/recycle_path() recirculate true_path vectors between dying
// packets (delivered, dropped, unroutable) and freshly injected ones so
// steady-state forwarding performs zero heap allocations.

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "net/types.hpp"

namespace mars::net {

class PacketPool {
 public:
  /// Capacity reserved in every pooled true_path buffer. Fat-tree and
  /// leaf-spine paths are <= 6 hops; longer paths just grow the buffer
  /// once and the larger capacity is recycled with it.
  static constexpr std::size_t kPathReserve = 16;

  /// Park a packet while it crosses a link. The returned pointer is stable
  /// until release().
  Packet* acquire(Packet&& pkt) {
    if (free_.empty()) {
      slots_.push_back(std::move(pkt));
      return &slots_.back();
    }
    Packet* slot = free_.back();
    free_.pop_back();
    *slot = std::move(pkt);
    return slot;
  }

  /// Return a slot whose packet has been moved out.
  void release(Packet* slot) { free_.push_back(slot); }

  /// A cleared true_path buffer, with capacity recycled from dead packets.
  std::vector<SwitchId> take_path() {
    if (paths_.empty()) {
      std::vector<SwitchId> path;
      path.reserve(kPathReserve);
      return path;
    }
    std::vector<SwitchId> path = std::move(paths_.back());
    paths_.pop_back();
    path.clear();
    return path;
  }

  /// Reclaim a dying packet's true_path buffer.
  void recycle_path(std::vector<SwitchId>&& path) {
    if (path.capacity() == 0) return;  // moved-from husk: nothing to keep
    paths_.push_back(std::move(path));
  }

  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
  [[nodiscard]] std::size_t in_flight() const {
    return slots_.size() - free_.size();
  }

 private:
  std::deque<Packet> slots_;  ///< stable addresses; grows to peak in-flight
  std::vector<Packet*> free_;
  std::vector<std::vector<SwitchId>> paths_;
};

}  // namespace mars::net
