#pragma once
// K-ary fat-tree builder (the paper evaluates on a K=4 fat-tree, Fig. 6).
//
// Layout for even K:
//   - K pods, each with K/2 edge switches and K/2 aggregation switches;
//   - (K/2)^2 core switches;
//   - every edge switch connects to every aggregation switch in its pod;
//   - aggregation switch j of each pod connects to core switches
//     [j*K/2, (j+1)*K/2).
// Edge switches act as MARS source/sink switches (hosts are implicit).

#include <vector>

#include "net/topology.hpp"

namespace mars::net {

struct FatTreeConfig {
  int k = 4;                      ///< arity; must be even and >= 2
  double edge_agg_gbps = 10.0;    ///< edge<->aggregation link rate
  double agg_core_gbps = 10.0;    ///< aggregation<->core link rate
  sim::Time propagation = 1'000;  ///< per-link propagation delay (ns)
};

struct FatTree {
  Topology topology;
  std::vector<SwitchId> edge;  ///< pod-major order
  std::vector<SwitchId> agg;   ///< pod-major order
  std::vector<SwitchId> core;

  [[nodiscard]] int pod_of_edge(std::size_t edge_index, int k) const {
    return static_cast<int>(edge_index) / (k / 2);
  }
};

/// Build a fat-tree. Asserts on invalid K.
[[nodiscard]] FatTree build_fat_tree(const FatTreeConfig& config);

}  // namespace mars::net
