#include "net/leaf_spine.hpp"

#include <cassert>

namespace mars::net {

LeafSpine build_leaf_spine(const LeafSpineConfig& config) {
  assert(config.leaves >= 2 && config.spines >= 1);
  LeafSpine ls;
  for (int s = 0; s < config.spines; ++s) {
    ls.spine.push_back(ls.topology.add_switch(Layer::kCore));
  }
  for (int l = 0; l < config.leaves; ++l) {
    const SwitchId leaf = ls.topology.add_switch(Layer::kEdge);
    ls.leaf.push_back(leaf);
    for (const SwitchId spine : ls.spine) {
      ls.topology.add_link(leaf, spine, config.leaf_spine_gbps,
                           config.propagation);
    }
  }
  return ls;
}

}  // namespace mars::net
