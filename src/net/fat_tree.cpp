#include "net/fat_tree.hpp"

#include <cassert>

namespace mars::net {

FatTree build_fat_tree(const FatTreeConfig& config) {
  const int k = config.k;
  assert(k >= 2 && k % 2 == 0);
  const int half = k / 2;

  FatTree ft;
  // Core first so their ids are stable regardless of pod count.
  for (int i = 0; i < half * half; ++i) {
    ft.core.push_back(ft.topology.add_switch(Layer::kCore));
  }
  for (int pod = 0; pod < k; ++pod) {
    std::vector<SwitchId> pod_agg;
    for (int j = 0; j < half; ++j) {
      const SwitchId agg = ft.topology.add_switch(Layer::kAggregation);
      ft.agg.push_back(agg);
      pod_agg.push_back(agg);
      // Aggregation switch j uplinks to core group j.
      for (int c = 0; c < half; ++c) {
        ft.topology.add_link(agg, ft.core[static_cast<std::size_t>(j * half + c)],
                             config.agg_core_gbps, config.propagation);
      }
    }
    for (int e = 0; e < half; ++e) {
      const SwitchId edge = ft.topology.add_switch(Layer::kEdge);
      ft.edge.push_back(edge);
      for (const SwitchId agg : pod_agg) {
        ft.topology.add_link(edge, agg, config.edge_agg_gbps,
                             config.propagation);
      }
    }
  }
  return ft;
}

}  // namespace mars::net
