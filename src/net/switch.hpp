#pragma once
// Output-queued switch model.
//
// Each inter-switch port has a FIFO queue drained at
// min(link rate, configured packet rate). Fault knobs cover the paper's
// injection scenarios (§5.2): `max_pps` (process-rate decrease),
// `extra_delay` (delay outside the queue), `drop_probability` (drop) —
// plus the gray-failure family (DESIGN.md "Gray failures"): `slow_drain`
// (service slows with instantaneous queue occupancy, so the fault only
// bites under load) and `gated_delay` (extra latency only above a queue-
// depth threshold). Gray knobs cost two zero-compares on the healthy
// service path and draw no RNG.
//
// All of a switch's event scheduling goes through its Lane, bound by the
// Network right after construction: a plain lane on the single simulator
// in legacy mode (byte-identical to the historical behavior), or a keyed
// lane on the owning shard's simulator in sharded mode (so service and
// hop events replay identically at any shard count).

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "net/types.hpp"
#include "sim/lane.hpp"
#include "sim/time.hpp"
#include "util/fifo_ring.hpp"
#include "util/rng.hpp"

namespace mars::net {

class Network;

/// Monotonic counters per egress port (ground truth / figures, not visible
/// to the monitored algorithms).
struct PortCounters {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t drops = 0;
  sim::Time busy_time = 0;  ///< cumulative serialization time
  // Fault-attributable perturbations, separated from ambient behavior so
  // the injector's manifestation probes can tell "fault actually touched
  // traffic this window" apart from tail drops / plain queueing.
  std::uint64_t fault_drops = 0;      ///< drops from drop_probability
  std::uint64_t drain_penalties = 0;  ///< services slowed by slow_drain
  std::uint64_t gated_delays = 0;     ///< packets delayed by gated_delay
};

class Switch {
 public:
  Switch(Network& net, SwitchId id, Layer layer, std::size_t port_count);

  [[nodiscard]] SwitchId id() const { return id_; }
  [[nodiscard]] Layer layer() const { return layer_; }
  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }

  /// Entry point: a packet arrives from a link or is injected by a host.
  /// Takes ownership by move — the hot path never copies a Packet (the
  /// true_path vector would drag an allocation through every hop).
  void receive(Packet&& pkt);

  // ---- fault knobs (per port) ----
  void set_max_pps(PortId port, double pps);
  void set_extra_delay(PortId port, sim::Time delay);
  void set_drop_probability(PortId port, double p);
  /// Slow-drain: every service takes `per_pkt` extra ns per packet
  /// WAITING behind the head (zero penalty at depth <= 1), so the fault
  /// is invisible on an idle port and self-reinforcing under load.
  void set_slow_drain(PortId port, sim::Time per_pkt);
  /// Load-gated delay: packets leaving while the queue holds at least
  /// `min_depth` packets (counting the departing head) gain `delay` ns of
  /// post-service latency; below the threshold the port is healthy.
  void set_gated_delay(PortId port, sim::Time delay, std::uint32_t min_depth);
  /// Reset every fault knob on every port to the healthy default.
  void clear_faults();

  [[nodiscard]] const PortCounters& counters(PortId port) const {
    return ports_[port].counters;
  }
  [[nodiscard]] std::uint32_t queue_depth(PortId port) const {
    return static_cast<std::uint32_t>(ports_[port].queue.size());
  }
  /// Sum of queue depths across all ports (total buffer occupancy).
  [[nodiscard]] std::uint32_t total_queue_depth() const;

  void set_queue_capacity(std::uint32_t packets) { queue_capacity_ = packets; }

  /// Internal: called once by Network after topology wiring to cache the
  /// egress link rate (bits/ns) next to the queue it drains.
  void set_port_rate(PortId port, double gbps) {
    ports_[port].rate_gbps = gbps;
  }

  /// Internal: called once by Network to attach this switch to its
  /// simulator (plain lane: the shared simulator; keyed lane: the owning
  /// shard's simulator).
  void bind_lane(sim::Lane lane) { lane_ = lane; }
  [[nodiscard]] sim::Lane& lane() { return lane_; }

 private:
  struct PortState {
    util::FifoRing<Packet> queue;
    bool busy = false;
    double rate_gbps = 1.0;  ///< egress link rate, cached from Network
    // fault knobs. service_floor is the precomputed per-packet
    // serialization floor in ns derived from set_max_pps (0 = no fault);
    // keeping it as an integer keeps isfinite/divide off the service path.
    sim::Time service_floor = 0;
    sim::Time extra_delay = 0;
    double drop_probability = 0.0;
    // gray-failure knobs (0 = healthy)
    sim::Time drain_per_pkt = 0;   ///< slow-drain ns per queued packet
    sim::Time gated_delay = 0;     ///< load-gated extra latency
    std::uint32_t gate_depth = 0;  ///< queue depth arming gated_delay
    PortCounters counters;
  };

  void enqueue(Packet&& pkt, PortId out);
  void start_service(PortId out);
  void finish_service(PortId out);

  Network& net_;
  SwitchId id_;
  Layer layer_;
  std::uint32_t queue_capacity_ = 256;
  std::vector<PortState> ports_;
  util::Rng rng_;
  sim::Lane lane_;
};

}  // namespace mars::net
