#include "net/switch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mars::net {

Switch::Switch(Network& net, SwitchId id, Layer layer, std::size_t port_count)
    : net_(net), id_(id), layer_(layer), ports_(port_count),
      rng_(0xC0FFEEull ^ (static_cast<std::uint64_t>(id) << 20)) {}

void Switch::receive(Packet&& pkt) {
  auto& sim = lane_.simulator();
  pkt.switch_arrival = sim.now();
  if (pkt.true_path.empty()) pkt.source_switch_time = sim.now();
  pkt.true_path.push_back(id_);
  ++pkt.hop_count;

  const auto& observers = net_.observers();
  if (!observers.empty()) {
    SwitchContext ctx{sim, *this, id_, layer_};
    for (auto* obs : observers) obs->on_ingress(ctx, pkt);
  }

  if (id_ == pkt.flow.sink) {
    net_.deliver(*this, std::move(pkt));
    return;
  }

  PortId out = 0;
  if (!net_.routing().select_port(id_, pkt.flow.sink, pkt.flow_hash, out)) {
    net_.count_unroutable(id_);
    net_.recycle_dead(id_, std::move(pkt));
    return;
  }
  enqueue(std::move(pkt), out);
}

void Switch::enqueue(Packet&& pkt, PortId out) {
  auto& sim = lane_.simulator();
  PortState& port = ports_[out];
  const auto& observers = net_.observers();

  // p >= 1 (a flapped-down link) short-circuits the RNG draw: certain
  // drops must not consume the stream that probabilistic faults replay.
  const bool fault_drop =
      port.drop_probability > 0.0 &&
      (port.drop_probability >= 1.0 || rng_.chance(port.drop_probability));
  const bool tail_drop = port.queue.size() >= queue_capacity_;
  if (fault_drop || tail_drop) {
    ++port.counters.drops;
    if (fault_drop) ++port.counters.fault_drops;
    net_.count_drop(id_);
    if (!observers.empty()) {
      SwitchContext ctx{sim, *this, id_, layer_};
      for (auto* obs : observers) obs->on_drop(ctx, pkt, out);
    }
    net_.recycle_dead(id_, std::move(pkt));
    return;
  }

  if (!observers.empty()) {
    SwitchContext ctx{sim, *this, id_, layer_};
    const auto depth = static_cast<std::uint32_t>(port.queue.size());
    for (auto* obs : observers) obs->on_enqueue(ctx, pkt, out, depth);
  }
  port.queue.push_back(std::move(pkt));
  if (!port.busy) start_service(out);
}

void Switch::start_service(PortId out) {
  PortState& port = ports_[out];
  assert(!port.queue.empty());
  port.busy = true;

  const Packet& head = port.queue.front();
  const double gbps = port.rate_gbps;  // bits per nanosecond
  const double bits = static_cast<double>(head.wire_bytes()) * 8.0;
  auto service = static_cast<sim::Time>(std::ceil(bits / gbps));
  service = std::max(service, port.service_floor);
  service = std::max<sim::Time>(service, 1);
  if (port.drain_per_pkt > 0 && port.queue.size() > 1) {
    // Slow-drain: occupancy-proportional penalty (packets waiting behind
    // the head), so an unloaded port services at the healthy rate.
    service +=
        port.drain_per_pkt * static_cast<sim::Time>(port.queue.size() - 1);
    ++port.counters.drain_penalties;
  }
  port.counters.busy_time += service;
  auto done = [this, out] { finish_service(out); };
  static_assert(sim::event_fn_fits_inline<decltype(done)>,
                "service-completion closure must fit the inline buffer");
  lane_.schedule_in(service, std::move(done));
}

void Switch::finish_service(PortId out) {
  auto& sim = lane_.simulator();
  PortState& port = ports_[out];
  assert(port.busy && !port.queue.empty());

  // Work on the head in place; it is moved straight from the ring into the
  // in-flight pool slot, so a serviced packet costs exactly one move.
  Packet& pkt = port.queue.front();
  ++port.counters.tx_packets;
  port.counters.tx_bytes += pkt.wire_bytes();

  const auto& observers = net_.observers();
  if (!observers.empty()) {
    SwitchContext ctx{sim, *this, id_, layer_};
    const sim::Time hop_latency = sim.now() - pkt.switch_arrival;
    for (auto* obs : observers) obs->on_egress(ctx, pkt, out, hop_latency);
  }

  sim::Time extra = port.extra_delay;
  if (port.gated_delay > 0 && port.queue.size() >= port.gate_depth) {
    extra += port.gated_delay;
    ++port.counters.gated_delays;
  }
  net_.forward_to_neighbor(id_, out, std::move(pkt), extra);
  port.queue.drop_front_moved();

  if (!port.queue.empty()) {
    start_service(out);
  } else {
    port.busy = false;
  }
}

void Switch::set_max_pps(PortId port, double pps) {
  // Same expression the service path used to evaluate per packet, now
  // folded to an integer floor once at fault-injection time.
  if (std::isfinite(pps) && pps > 0.0) {
    ports_[port].service_floor = static_cast<sim::Time>(1e9 / pps);
  } else {
    ports_[port].service_floor = 0;
  }
}

void Switch::set_extra_delay(PortId port, sim::Time delay) {
  ports_[port].extra_delay = delay;
}

void Switch::set_drop_probability(PortId port, double p) {
  ports_[port].drop_probability = p;
}

void Switch::set_slow_drain(PortId port, sim::Time per_pkt) {
  ports_[port].drain_per_pkt = per_pkt;
}

void Switch::set_gated_delay(PortId port, sim::Time delay,
                             std::uint32_t min_depth) {
  ports_[port].gated_delay = delay;
  ports_[port].gate_depth = min_depth;
}

void Switch::clear_faults() {
  for (auto& port : ports_) {
    port.service_floor = 0;
    port.extra_delay = 0;
    port.drop_probability = 0.0;
    port.drain_per_pkt = 0;
    port.gated_delay = 0;
    port.gate_depth = 0;
  }
}

std::uint32_t Switch::total_queue_depth() const {
  std::uint32_t total = 0;
  for (const auto& port : ports_) {
    total += static_cast<std::uint32_t>(port.queue.size());
  }
  return total;
}

}  // namespace mars::net
