#include "net/topology.hpp"

#include <cassert>

namespace mars::net {

SwitchId Topology::add_switch(Layer layer) {
  const auto id = static_cast<SwitchId>(layers_.size());
  layers_.push_back(layer);
  ports_.emplace_back();
  return id;
}

std::size_t Topology::add_link(SwitchId a, SwitchId b, double gbps,
                               sim::Time propagation) {
  assert(a < switch_count() && b < switch_count() && a != b);
  const auto a_port = static_cast<PortId>(ports_[a].size());
  const auto b_port = static_cast<PortId>(ports_[b].size());
  const std::size_t index = links_.size();
  links_.push_back(Link{{a, a_port}, {b, b_port}, gbps, propagation});
  ports_[a].push_back(PortPeer{b, b_port, index});
  ports_[b].push_back(PortPeer{a, a_port, index});
  return index;
}

std::optional<PortId> Topology::port_towards(SwitchId sw,
                                             SwitchId neighbor) const {
  for (PortId p = 0; p < ports_[sw].size(); ++p) {
    if (ports_[sw][p].neighbor == neighbor) return p;
  }
  return std::nullopt;
}

std::vector<SwitchId> Topology::switches_in_layer(Layer layer) const {
  std::vector<SwitchId> out;
  for (SwitchId sw = 0; sw < layers_.size(); ++sw) {
    if (layers_[sw] == layer) out.push_back(sw);
  }
  return out;
}

std::vector<SwitchId> Topology::neighbors(SwitchId sw) const {
  std::vector<SwitchId> out;
  out.reserve(ports_[sw].size());
  for (const auto& peer : ports_[sw]) out.push_back(peer.neighbor);
  return out;
}

std::uint64_t structural_fingerprint(const Topology& topology) {
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h = (h ^ (v & 0xFF)) * kPrime;
      v >>= 8;
    }
  };
  mix(topology.switch_count());
  for (SwitchId sw = 0; sw < topology.switch_count(); ++sw) {
    mix(static_cast<std::uint64_t>(topology.layer(sw)));
    mix(topology.port_count(sw));
    for (PortId p = 0; p < topology.port_count(sw); ++p) {
      const auto& peer = topology.peer(sw, p);
      mix(peer.neighbor);
      mix(peer.neighbor_port);
    }
  }
  return h;
}

}  // namespace mars::net
