#include "net/topology.hpp"

#include <cassert>

namespace mars::net {

SwitchId Topology::add_switch(Layer layer) {
  const auto id = static_cast<SwitchId>(layers_.size());
  layers_.push_back(layer);
  ports_.emplace_back();
  return id;
}

std::size_t Topology::add_link(SwitchId a, SwitchId b, double gbps,
                               sim::Time propagation) {
  assert(a < switch_count() && b < switch_count() && a != b);
  const auto a_port = static_cast<PortId>(ports_[a].size());
  const auto b_port = static_cast<PortId>(ports_[b].size());
  const std::size_t index = links_.size();
  links_.push_back(Link{{a, a_port}, {b, b_port}, gbps, propagation});
  ports_[a].push_back(PortPeer{b, b_port, index});
  ports_[b].push_back(PortPeer{a, a_port, index});
  return index;
}

std::optional<PortId> Topology::port_towards(SwitchId sw,
                                             SwitchId neighbor) const {
  for (PortId p = 0; p < ports_[sw].size(); ++p) {
    if (ports_[sw][p].neighbor == neighbor) return p;
  }
  return std::nullopt;
}

std::vector<SwitchId> Topology::switches_in_layer(Layer layer) const {
  std::vector<SwitchId> out;
  for (SwitchId sw = 0; sw < layers_.size(); ++sw) {
    if (layers_[sw] == layer) out.push_back(sw);
  }
  return out;
}

std::vector<SwitchId> Topology::neighbors(SwitchId sw) const {
  std::vector<SwitchId> out;
  out.reserve(ports_[sw].size());
  for (const auto& peer : ports_[sw]) out.push_back(peer.neighbor);
  return out;
}

}  // namespace mars::net
