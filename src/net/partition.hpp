#pragma once
// Topology partitioner for the sharded simulator.
//
// Shards must cut the topology along links only (a switch's queues are
// single-threaded state), and the conservative window is bounded by the
// smallest propagation delay crossing a shard boundary — so the
// partitioner's job is to produce few, fat boundary links. In a fat-tree
// the natural atoms are pods: removing the core layer leaves one
// connected component per pod, and every pod-to-pod path crosses a core
// switch, so cutting only pod<->core (and core<->core assignment) edges
// keeps intra-pod traffic shard-local. The same rule degrades gracefully
// on a leaf-spine (spines are Layer::kCore there): each leaf is its own
// atom.
//
// Assignment is deterministic: components ordered largest-first (ties by
// smallest member id) go to the currently least-loaded shard (ties to the
// lowest shard index). Determinism of the *simulation* does not depend on
// the assignment — event keys do that — but a reproducible layout keeps
// per-shard gauges and stall diagnostics comparable across runs.

#include <cstddef>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace mars::net {

struct Partition {
  int shards = 0;
  /// Shard owning each switch, indexed by SwitchId.
  std::vector<int> shard_of;
  /// Indices into topology.links() whose endpoints live in different
  /// shards (the mailbox edges).
  std::vector<std::size_t> boundary_links;
  /// Smallest propagation delay over boundary_links — the network's
  /// contribution to the conservative lookahead. 0 when no link crosses
  /// a boundary (single shard).
  sim::Time min_boundary_propagation = 0;
};

/// Number of atomic components the partitioner can distribute: connected
/// components of the topology with core-layer switches removed, plus one
/// singleton per core switch. Sharding beyond this cannot balance.
[[nodiscard]] int partition_capacity(const Topology& topology);

/// Partition into `shards` groups (1 <= shards <= partition_capacity).
[[nodiscard]] Partition partition_topology(const Topology& topology,
                                           int shards);

}  // namespace mars::net
