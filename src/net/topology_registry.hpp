#pragma once
// Registry-driven topology construction: scenarios pick a fabric by NAME
// plus parameters instead of hard-wiring build_fat_tree at the call site.
//
// A TopologySpec is the declarative description (serializable to/from the
// ScenarioSpec JSON); a builder turns it into a BuiltFabric — the topology
// plus the role metadata every layer above needs (which switches source
// and sink traffic, how many pods the traffic matrix should honour).
// Builders for "fat-tree" and "leaf-spine" are registered at startup;
// new fabrics register themselves the same way without touching the
// scenario engine.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/topology.hpp"

namespace mars::net {

/// Declarative fabric description. Only the fields relevant to the named
/// builder are read (e.g. `k` for fat-tree, `leaves`/`spines` for
/// leaf-spine); the rest travel inert so one spec type covers every shape.
struct TopologySpec {
  std::string name = "fat-tree";  ///< registry key
  int k = 4;                      ///< fat-tree arity (even, >= 4)
  int leaves = 8, spines = 4;     ///< leaf-spine shape
  /// Link rates in Gbps: `edge_gbps` for edge-layer links (edge<->agg,
  /// leaf<->spine), `core_gbps` for core-layer links (agg<->core).
  double edge_gbps = 10.0;
  double core_gbps = 10.0;
  sim::Time propagation = 1'000;  ///< per-link propagation delay (ns)

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// A built fabric plus the role metadata the scenario layers need.
struct BuiltFabric {
  Topology topology;
  std::vector<SwitchId> edge;  ///< traffic sources/sinks, pod-major order
  std::vector<SwitchId> core;  ///< core layer (informational)
  /// Pod count for TrafficGenerator::add_background's inter-pod fraction
  /// (1 = no pod structure; all flows draw from one pool).
  int pods = 1;
};

class TopologyRegistry {
 public:
  using Builder = std::function<BuiltFabric(const TopologySpec&)>;
  /// Returns spec errors ("" prefix-free sentences); empty means valid.
  using Validator = std::function<std::vector<std::string>(const TopologySpec&)>;

  /// Process-wide registry, pre-populated with "fat-tree" and
  /// "leaf-spine".
  [[nodiscard]] static TopologyRegistry& instance();

  void add(std::string name, Builder builder, Validator validator = nullptr);

  [[nodiscard]] bool contains(std::string_view name) const;
  /// Registered names, registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Spec problems for the named builder; includes "unknown topology" when
  /// the name is not registered. Empty result means build() will succeed.
  [[nodiscard]] std::vector<std::string> validate(
      const TopologySpec& spec) const;

  /// Build the named fabric. Throws std::invalid_argument carrying the
  /// validate() errors if the spec is rejected.
  [[nodiscard]] BuiltFabric build(const TopologySpec& spec) const;

 private:
  struct Entry {
    std::string name;
    Builder builder;
    Validator validator;
  };
  [[nodiscard]] const Entry* find(std::string_view name) const;

  std::vector<Entry> entries_;
};

}  // namespace mars::net
