#pragma once
// Shared identifier types for the network substrate.

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace mars::net {

/// Switch identifier. Dense, assigned by the Topology in creation order.
using SwitchId = std::uint32_t;

/// Port number local to a switch.
using PortId = std::uint16_t;

/// Sentinel for "no switch".
inline constexpr SwitchId kInvalidSwitch = 0xFFFFFFFFu;

/// Sentinel port used for the host-facing side of edge switches.
inline constexpr PortId kHostPort = 0xFFFFu;

/// The paper's FlowID: <source switch, sink switch>, deliberately without
/// host information (§4.1). MARS diagnoses problems between/in switches.
struct FlowId {
  SwitchId source = kInvalidSwitch;
  SwitchId sink = kInvalidSwitch;

  auto operator<=>(const FlowId&) const = default;
};

[[nodiscard]] inline std::string to_string(const FlowId& f) {
  return "<s" + std::to_string(f.source) + ",s" + std::to_string(f.sink) + ">";
}

/// Fat-tree layer of a switch.
enum class Layer : std::uint8_t { kEdge, kAggregation, kCore };

[[nodiscard]] inline const char* to_string(Layer layer) {
  switch (layer) {
    case Layer::kEdge: return "edge";
    case Layer::kAggregation: return "aggregation";
    case Layer::kCore: return "core";
  }
  return "?";
}

}  // namespace mars::net

template <>
struct std::hash<mars::net::FlowId> {
  std::size_t operator()(const mars::net::FlowId& f) const noexcept {
    return (static_cast<std::size_t>(f.source) << 32) ^ f.sink;
  }
};
