#pragma once
// Static network topology: switches, layers, and point-to-point links.
//
// The topology is immutable once built; runtime state (queues, rates,
// faults) lives in net::Switch / net::Network.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace mars::net {

/// One direction of a physical cable: (switch, port) -> (switch, port).
struct LinkEnd {
  SwitchId sw = kInvalidSwitch;
  PortId port = 0;
};

struct Link {
  LinkEnd a;
  LinkEnd b;
  double gbps = 10.0;             ///< per-direction capacity (paper: 10 Gbps)
  sim::Time propagation = 1'000;  ///< one-way propagation delay (ns)
};

class Topology {
 public:
  /// Adds a switch and returns its dense id.
  SwitchId add_switch(Layer layer);

  /// Connects two switches with a bidirectional link; ports are assigned
  /// densely per switch. Returns the link index.
  std::size_t add_link(SwitchId a, SwitchId b, double gbps = 10.0,
                       sim::Time propagation = 1'000);

  [[nodiscard]] std::size_t switch_count() const { return layers_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] Layer layer(SwitchId sw) const { return layers_[sw]; }
  [[nodiscard]] std::span<const Link> links() const { return links_; }

  /// Number of inter-switch ports on `sw`.
  [[nodiscard]] std::size_t port_count(SwitchId sw) const {
    return ports_[sw].size();
  }

  /// The (neighbor switch, neighbor port, link index) behind a local port.
  struct PortPeer {
    SwitchId neighbor = kInvalidSwitch;
    PortId neighbor_port = 0;
    std::size_t link = 0;
  };
  [[nodiscard]] const PortPeer& peer(SwitchId sw, PortId port) const {
    return ports_[sw][port];
  }

  /// Port on `sw` that faces `neighbor`, if directly connected.
  [[nodiscard]] std::optional<PortId> port_towards(SwitchId sw,
                                                   SwitchId neighbor) const;

  /// All switches of a given layer.
  [[nodiscard]] std::vector<SwitchId> switches_in_layer(Layer layer) const;

  /// Neighbor switch ids of `sw` (one per port, in port order).
  [[nodiscard]] std::vector<SwitchId> neighbors(SwitchId sw) const;

 private:
  std::vector<Layer> layers_;
  std::vector<Link> links_;
  std::vector<std::vector<PortPeer>> ports_;  // per switch, per port
};

/// FNV-1a hash of the structural graph: switch count, per-switch layer,
/// and per-port peer wiring. Two topologies with the same fingerprint
/// enumerate the same shortest paths, so it (plus the PathIdConfig) keys
/// the control plane's PathRegistry cache. Link capacities and delays are
/// deliberately excluded — path enumeration never reads them.
[[nodiscard]] std::uint64_t structural_fingerprint(const Topology& topology);

}  // namespace mars::net
