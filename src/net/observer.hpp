#pragma once
// Hook interface between the forwarding substrate and monitoring systems.
//
// MARS's P4 pipeline, and each baseline's data plane, are implemented as
// PacketObservers: the switch calls them at exactly the points a real P4
// program executes (ingress parse, enqueue, egress deparse, drop, and the
// sink's host-facing delivery where INT headers are stripped).

#include <cstdint>

#include "net/packet.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace mars::sim {
class Simulator;
}

namespace mars::net {

class Switch;

/// Per-callback context: which switch, and access to virtual time.
struct SwitchContext {
  sim::Simulator& sim;
  Switch& sw;
  SwitchId id;
  Layer layer;
};

class PacketObserver {
 public:
  virtual ~PacketObserver() = default;

  /// Packet entered the switch (before the forwarding decision).
  virtual void on_ingress(SwitchContext& /*ctx*/, Packet& /*pkt*/) {}

  /// Forwarding decision made; the packet is about to join the egress
  /// queue of `out`. `queue_depth` is the occupancy it sees on arrival.
  virtual void on_enqueue(SwitchContext& /*ctx*/, Packet& /*pkt*/,
                          PortId /*out*/, std::uint32_t /*queue_depth*/) {}

  /// Packet finished service at egress port `out`.
  /// `hop_latency` = departure − ingress arrival at this switch.
  virtual void on_egress(SwitchContext& /*ctx*/, Packet& /*pkt*/,
                         PortId /*out*/, sim::Time /*hop_latency*/) {}

  /// Packet was dropped at this switch (tail drop or fault).
  virtual void on_drop(SwitchContext& /*ctx*/, const Packet& /*pkt*/,
                       PortId /*out*/) {}

  /// Packet reached its sink switch and leaves the network. The observer
  /// may read/strip telemetry here (paper: "All INT headers will be removed
  /// at the end of the sink switch").
  virtual void on_deliver(SwitchContext& /*ctx*/, Packet& /*pkt*/) {}
};

}  // namespace mars::net
