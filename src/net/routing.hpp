#pragma once
// Shortest-path routing with ECMP groups.
//
// For every (switch, destination edge switch) pair we precompute the set of
// ports that lie on a shortest path, each with a weight. Equal weights give
// the paper's baseline 1:1 ECMP; the imbalance fault rewrites weights
// (§5.2: ratios 1:4 .. 1:10). Path enumeration feeds the control plane's
// PathID registry (§4.1).

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"

namespace mars::net {

/// One ECMP next-hop alternative.
struct EcmpMember {
  PortId port = 0;
  std::uint32_t weight = 1;
};

/// The ECMP group a switch uses towards one destination.
struct EcmpGroup {
  std::vector<EcmpMember> members;

  [[nodiscard]] std::uint32_t total_weight() const {
    std::uint32_t sum = 0;
    for (const auto& m : members) sum += m.weight;
    return sum;
  }
};

/// A switch-level path: the ordered switch ids a packet traverses,
/// source and sink inclusive.
using SwitchPath = std::vector<SwitchId>;

class RoutingTable {
 public:
  /// Builds shortest-path ECMP state for every destination switch.
  explicit RoutingTable(const Topology& topology);

  /// Group of candidate egress ports at `at` towards `dst`.
  /// Empty when dst is unreachable or dst == at.
  [[nodiscard]] const EcmpGroup& group(SwitchId at, SwitchId dst) const {
    return groups_[index(at, dst)];
  }

  /// Mutable access so faults can rewrite ECMP weights.
  [[nodiscard]] EcmpGroup& mutable_group(SwitchId at, SwitchId dst) {
    return groups_[index(at, dst)];
  }

  /// Pick the egress port for a flow by weighted hash. Deterministic in
  /// (flow_hash, at). Returns false if no route exists.
  [[nodiscard]] bool select_port(SwitchId at, SwitchId dst,
                                 std::uint32_t flow_hash, PortId& out) const;

  /// Hop distance (switch count minus one); -1 when unreachable.
  [[nodiscard]] int distance(SwitchId from, SwitchId to) const {
    return dist_[index(from, to)];
  }

  /// Enumerate every shortest switch-level path from `src` to `dst`
  /// (source and sink inclusive). Used by the PathID registry.
  [[nodiscard]] std::vector<SwitchPath> enumerate_paths(SwitchId src,
                                                        SwitchId dst) const;

  /// All shortest paths from one edge switch to every other edge switch,
  /// destinations in layer order. One "root" of the registry's parallel
  /// enumeration: concatenating these per-source results in source order
  /// is exactly enumerate_edge_paths().
  [[nodiscard]] std::vector<SwitchPath> enumerate_edge_paths_from(
      SwitchId src) const;

  /// All shortest paths between every ordered pair of edge switches.
  [[nodiscard]] std::vector<SwitchPath> enumerate_edge_paths() const;

 private:
  [[nodiscard]] std::size_t index(SwitchId at, SwitchId dst) const {
    return static_cast<std::size_t>(at) * n_ + dst;
  }

  const Topology* topology_;
  std::size_t n_;
  std::vector<int> dist_;          // n x n hop distances
  std::vector<EcmpGroup> groups_;  // n x n next-hop groups
};

}  // namespace mars::net
