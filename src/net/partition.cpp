#include "net/partition.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace mars::net {

namespace {

/// Connected components of the topology minus its core layer; core
/// switches come back as singleton components. Components are labelled
/// densely; each switch's label is returned, plus the member lists.
struct Components {
  std::vector<int> label;                       // per switch
  std::vector<std::vector<SwitchId>> members;   // per component, id order
};

Components find_components(const Topology& topology) {
  const auto n = topology.switch_count();
  Components out;
  out.label.assign(n, -1);
  std::vector<SwitchId> stack;
  for (SwitchId seed = 0; seed < n; ++seed) {
    if (out.label[seed] >= 0) continue;
    const int comp = static_cast<int>(out.members.size());
    out.members.emplace_back();
    out.label[seed] = comp;
    out.members[comp].push_back(seed);
    if (topology.layer(seed) == Layer::kCore) continue;  // singleton
    stack.assign(1, seed);
    while (!stack.empty()) {
      const SwitchId sw = stack.back();
      stack.pop_back();
      for (const SwitchId next : topology.neighbors(sw)) {
        if (out.label[next] >= 0) continue;
        if (topology.layer(next) == Layer::kCore) continue;
        out.label[next] = comp;
        out.members[comp].push_back(next);
        stack.push_back(next);
      }
    }
    std::sort(out.members[comp].begin(), out.members[comp].end());
  }
  return out;
}

}  // namespace

int partition_capacity(const Topology& topology) {
  return static_cast<int>(find_components(topology).members.size());
}

Partition partition_topology(const Topology& topology, int shards) {
  assert(shards >= 1);
  const Components comps = find_components(topology);
  assert(shards <= static_cast<int>(comps.members.size()));

  // Largest components first (ties by smallest member id) onto the
  // least-loaded shard (ties to the lowest index): deterministic and
  // balanced enough that pods spread evenly for any shard count that
  // divides the pod count.
  std::vector<std::size_t> order(comps.members.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (comps.members[a].size() != comps.members[b].size()) {
      return comps.members[a].size() > comps.members[b].size();
    }
    return comps.members[a].front() < comps.members[b].front();
  });

  Partition partition;
  partition.shards = shards;
  partition.shard_of.assign(topology.switch_count(), 0);
  std::vector<std::size_t> load(static_cast<std::size_t>(shards), 0);
  for (const std::size_t comp : order) {
    const auto lightest = static_cast<std::size_t>(std::distance(
        load.begin(), std::min_element(load.begin(), load.end())));
    load[lightest] += comps.members[comp].size();
    for (const SwitchId sw : comps.members[comp]) {
      partition.shard_of[sw] = static_cast<int>(lightest);
    }
  }

  partition.min_boundary_propagation = std::numeric_limits<sim::Time>::max();
  for (std::size_t i = 0; i < topology.links().size(); ++i) {
    const Link& link = topology.links()[i];
    if (partition.shard_of[link.a.sw] == partition.shard_of[link.b.sw]) {
      continue;
    }
    partition.boundary_links.push_back(i);
    partition.min_boundary_propagation =
        std::min(partition.min_boundary_propagation, link.propagation);
  }
  if (partition.boundary_links.empty()) {
    partition.min_boundary_propagation = 0;
  }
  return partition;
}

}  // namespace mars::net
