#pragma once
// Packet model.
//
// A packet carries (a) forwarding state used by the substrate, (b) the MARS
// in-band fields exactly as the paper defines them (§4.1–4.2): an 8-bit-class
// PathID field updated per hop, an optional 11-byte INT telemetry header on
// sampled packets, and the anomaly-suppression flag; and (c) ground-truth
// bookkeeping used only by tests and evaluation (never by the algorithms).

#include <cstdint>
#include <optional>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace mars::net {

/// The INT telemetry header MARS inserts on one sampled packet per flow per
/// epoch (paper §4.2.1: 11 bytes — source timestamp, last-epoch packet
/// count, total queue depth, epoch id).
struct IntHeader {
  sim::Time source_timestamp = 0;  ///< ingress time at the source switch
  std::uint32_t last_epoch_count = 0;  ///< flow packet count in prior epoch
  std::uint32_t total_queue_depth = 0; ///< sum of queue depths over hops
  std::uint32_t epoch_id = 0;          ///< telemetry epoch sequence number

  /// Wire size as deployed on the Tofino prototype.
  static constexpr std::uint32_t kWireBytes = 11;
};

struct Packet {
  // ---- substrate forwarding state ----
  std::uint64_t id = 0;         ///< globally unique packet id
  FlowId flow;                  ///< <source switch, sink switch>
  std::uint32_t flow_hash = 0;  ///< per-flow entropy (stands in for 5-tuple)
  std::uint32_t size_bytes = 0; ///< payload + base headers, excl. telemetry
  sim::Time created = 0;        ///< injection time at the source switch
  PortId ingress_port = kHostPort;  ///< port the packet arrived on

  // ---- MARS in-band fields ----
  std::uint32_t path_id = 0;    ///< updated per hop (paper §4.1)
  bool has_path_id = false;     ///< source switch inserted the PathID field
  std::optional<IntHeader> telemetry;  ///< present on telemetry packets
  bool anomaly_flagged = false; ///< suppresses duplicate notifications
  /// Sharded mode: the switch that set the suppression flag and the
  /// latency it observed, carried in-band so the sink can issue the
  /// notification from its own shard (the flagging switch may live on
  /// another shard whose notification state must not be touched here).
  SwitchId anomaly_reporter = kInvalidSwitch;
  sim::Time anomaly_latency = 0;

  // ---- ground truth (evaluation only; not visible to MARS logic) ----
  std::vector<SwitchId> true_path;  ///< switches traversed, in order
  sim::Time source_switch_time = 0; ///< arrival at the source switch
  sim::Time switch_arrival = 0;     ///< arrival at the current switch
  std::uint32_t hop_count = 0;

  [[nodiscard]] bool is_telemetry() const { return telemetry.has_value(); }

  /// Extra bytes this packet carries on the wire because of monitoring.
  /// PathID rides in a reserved IP field (1 byte class); the INT header adds
  /// its wire size on telemetry packets.
  [[nodiscard]] std::uint32_t monitoring_overhead_bytes() const {
    std::uint32_t bytes = has_path_id ? 1u : 0u;
    if (telemetry) bytes += IntHeader::kWireBytes;
    return bytes;
  }

  /// Total bytes occupying link capacity.
  [[nodiscard]] std::uint32_t wire_bytes() const {
    return size_bytes + monitoring_overhead_bytes();
  }
};

}  // namespace mars::net
