#include "detect/reservoir.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace mars::detect {

Reservoir::Reservoir(ReservoirConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  samples_.reserve(config_.volume);
}

double Reservoir::median() const { return util::median(samples_); }

double Reservoir::sigma() const {
  return config_.scale == ScaleEstimator::kMad ? util::mad_sigma(samples_)
                                               : util::stddev(samples_);
}

double Reservoir::threshold() const {
  if (!warmed_up()) {
    return static_cast<double>(config_.default_threshold);
  }
  const double m = median();
  const double margin =
      std::max(config_.sigma_multiplier * sigma(), config_.relative_margin * m);
  return m + margin;
}

double Reservoir::admit_probability() const {
  switch (config_.penalty) {
    case PenaltyMode::kNone:
      return config_.static_probability;
    case PenaltyMode::kConsecutiveOutliers:
    case PenaltyMode::kAsPrinted:
      return std::exp(-static_cast<double>(consecutive_)) *
             config_.static_probability;
  }
  return config_.static_probability;
}

bool Reservoir::input(double latency_ns) {
  const bool outlier = latency_ns > threshold();

  // Update c_o. See the header comment on the printed-vs-intended variants.
  if (config_.penalty == PenaltyMode::kAsPrinted) {
    consecutive_ = outlier ? 0 : consecutive_ + 1;
  } else {
    consecutive_ = outlier ? consecutive_ + 1 : 0;
  }

  if (samples_.size() < config_.volume) {
    samples_.push_back(latency_ns);
  } else if (rng_.chance(admit_probability())) {
    const auto victim =
        static_cast<std::size_t>(rng_.below(samples_.size()));
    samples_[victim] = latency_ns;
  }
  return outlier;
}

}  // namespace mars::detect
