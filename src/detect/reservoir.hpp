#pragma once
// Reservoir anomaly detection (paper §4.3.1, Algorithm 1).
//
// A per-flow reservoir of recent latency samples yields a dynamic threshold
//     θ = median(R) + C·σ(R).
// New samples replace random reservoir items with probability α·p_s where
// the penalty factor α = exp(−c_o) shrinks as consecutive outliers arrive,
// so a burst of anomalous latencies cannot inflate the threshold.
//
// Note on Algorithm 1 as printed: its lines 3–9 reset c_o on an outlier and
// increment it otherwise, which would make α *largest* during an outlier
// burst — the opposite of the paper's stated intent ("as more continuous
// outliers are detected, the possibility that incoming data gets into the
// reservoir decreases severely") and of the Fig. 8 ablation. We implement
// the stated intent: c_o counts consecutive outliers and resets on a normal
// sample. The printed variant is available as PenaltyMode::kAsPrinted for
// the ablation bench.

#include <cstddef>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace mars::detect {

enum class PenaltyMode {
  kNone,       ///< α ≡ 1 (the "w/o penalty factor" ablation in Fig. 8)
  kConsecutiveOutliers,  ///< α = exp(−c_o), c_o = consecutive outliers
  kAsPrinted,  ///< literal Algorithm 1 (c_o resets on outliers)
};

/// Scale estimator for the threshold margin. The paper writes θ = m + Cσ;
/// σ itself is fragile — one admitted extreme outlier in a reservoir of
/// hundreds inflates it by orders of magnitude, exactly the failure the
/// penalty factor tries to prevent at the admission stage. MAD (median
/// absolute deviation, σ-consistent scaling) closes the residual hole and
/// is the default; plain σ remains available for the ablation.
enum class ScaleEstimator {
  kStdDev,
  kMad,
};

struct ReservoirConfig {
  std::size_t volume = 256;        ///< reservoir capacity v
  double static_probability = 0.5; ///< p_s
  double sigma_multiplier = 3.0;   ///< C in θ = m + C·scale
  PenaltyMode penalty = PenaltyMode::kConsecutiveOutliers;
  ScaleEstimator scale = ScaleEstimator::kMad;
  /// Threshold for flows whose reservoir is still cold (paper: "set at a
  /// relatively high level (e.g., 10 seconds) to minimize false positives").
  sim::Time default_threshold = 10 * sim::kSecond;
  /// Minimum samples before the dynamic threshold replaces the default.
  std::size_t warmup = 16;
  /// Relative margin floor: θ >= m·(1 + margin) so a zero-variance
  /// reservoir does not flag benign jitter.
  double relative_margin = 0.05;
};

class Reservoir {
 public:
  explicit Reservoir(ReservoirConfig config = {},
                     std::uint64_t seed = 0x5A5A5A5Aull);

  /// Algorithm 1's INPUT: classify `latency_ns`, then maybe admit it.
  /// Returns the outlier flag.
  bool input(double latency_ns);

  /// Current detection threshold in nanoseconds.
  [[nodiscard]] double threshold() const;

  /// True once the dynamic threshold is active.
  [[nodiscard]] bool warmed_up() const {
    return samples_.size() >= config_.warmup;
  }

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] int consecutive_outliers() const { return consecutive_; }
  [[nodiscard]] const ReservoirConfig& config() const { return config_; }

  /// Median of the current reservoir contents (0 when empty).
  [[nodiscard]] double median() const;
  /// Scale of the current reservoir contents per the configured estimator.
  [[nodiscard]] double sigma() const;

 private:
  [[nodiscard]] double admit_probability() const;

  ReservoirConfig config_;
  std::vector<double> samples_;
  int consecutive_ = 0;  ///< c_o under the active PenaltyMode
  util::Rng rng_;
};

/// Fixed-threshold classifier: the static baseline Fig. 8 compares against.
class StaticThresholdDetector {
 public:
  explicit StaticThresholdDetector(double threshold_ns)
      : threshold_(threshold_ns) {}

  [[nodiscard]] bool input(double latency_ns) const {
    return latency_ns > threshold_;
  }
  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  double threshold_;
};

}  // namespace mars::detect
