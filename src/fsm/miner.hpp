#pragma once
// Miner interface and the registry of all implemented FSM algorithms
// (Fig. 11 compares their runtime and memory on MARS's abnormal sets).

#include <memory>
#include <string_view>
#include <vector>

#include "fsm/engine.hpp"
#include "fsm/sequence.hpp"

namespace mars::fsm {

class Miner {
 public:
  virtual ~Miner() = default;

  /// Mine all frequent patterns under `params`, with a per-call cost
  /// report (Fig. 11's runtime/memory axes). Stateless and safe under
  /// concurrent calls on the same object. Output order is unspecified but
  /// deterministic — identical for every params.threads value; use
  /// sort_patterns() to canonicalize.
  ///
  /// `pool` optionally reuses an existing thread pool when
  /// params.threads > 1 (a private pool is created per call otherwise);
  /// ignored for sequential runs.
  [[nodiscard]] virtual MineResult mine_with_stats(
      const SequenceDatabase& db, const MiningParams& params,
      parallel::ThreadPool* pool = nullptr) const = 0;

  /// Convenience wrapper: the patterns alone.
  [[nodiscard]] std::vector<Pattern> mine(const SequenceDatabase& db,
                                          const MiningParams& params) const {
    return mine_with_stats(db, params).patterns;
  }

  [[nodiscard]] virtual std::string_view name() const = 0;
};

enum class MinerKind {
  kPrefixSpan,
  kGsp,
  kSpade,
  kSpam,
  kLapin,
  kCmSpade,
  kCmSpam,
};

/// Factory for a miner by kind.
[[nodiscard]] std::unique_ptr<Miner> make_miner(MinerKind kind);

/// All kinds, in the order Fig. 11 lists them.
[[nodiscard]] std::vector<MinerKind> all_miner_kinds();

[[nodiscard]] std::string_view miner_name(MinerKind kind);

}  // namespace mars::fsm
