#pragma once
// Miner interface and the registry of all implemented FSM algorithms
// (Fig. 11 compares their runtime and memory on MARS's abnormal sets).

#include <memory>
#include <string_view>
#include <vector>

#include "fsm/sequence.hpp"

namespace mars::fsm {

class Miner {
 public:
  virtual ~Miner() = default;

  /// Mine all frequent patterns under `params`. Output order is
  /// unspecified; use sort_patterns() to canonicalize.
  [[nodiscard]] virtual std::vector<Pattern> mine(
      const SequenceDatabase& db, const MiningParams& params) const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Approximate peak auxiliary memory of the last mine() call, in bytes
  /// (Fig. 11's memory axis). Updated by each call; not thread-safe across
  /// concurrent mine() calls on the same object.
  [[nodiscard]] std::size_t last_memory_bytes() const {
    return last_memory_bytes_;
  }

 protected:
  mutable std::size_t last_memory_bytes_ = 0;
};

enum class MinerKind {
  kPrefixSpan,
  kGsp,
  kSpade,
  kSpam,
  kLapin,
  kCmSpade,
  kCmSpam,
};

/// Factory for a miner by kind.
[[nodiscard]] std::unique_ptr<Miner> make_miner(MinerKind kind);

/// All kinds, in the order Fig. 11 lists them.
[[nodiscard]] std::vector<MinerKind> all_miner_kinds();

[[nodiscard]] std::string_view miner_name(MinerKind kind);

}  // namespace mars::fsm
