#include "fsm/prefixspan.hpp"

#include <unordered_map>

namespace mars::fsm {
namespace {

// A projected database entry: the source sequence plus the positions where
// the current prefix *ends*. Under gapped semantics only the earliest end
// matters (any later occurrence offers a subset of the extensions); under
// contiguous semantics every end position can enable a different next item,
// so all of them are kept.
struct Projection {
  std::size_t entry = 0;
  std::vector<std::size_t> ends;
};

struct Ctx {
  const SequenceDatabase* db;
  MiningParams params;
  std::uint64_t min_support;
  std::vector<Pattern>* out;
  std::size_t peak_bytes = 0;
  std::size_t live_bytes = 0;

  void charge(std::size_t bytes) {
    live_bytes += bytes;
    peak_bytes = std::max(peak_bytes, live_bytes);
  }
  void release(std::size_t bytes) { live_bytes -= bytes; }
};

std::size_t projection_bytes(const std::vector<Projection>& proj) {
  std::size_t bytes = proj.size() * sizeof(Projection);
  for (const auto& p : proj) bytes += p.ends.size() * sizeof(std::size_t);
  return bytes;
}

void grow(Ctx& ctx, Sequence& prefix, const std::vector<Projection>& proj) {
  if (prefix.size() >= ctx.params.max_length) return;
  const auto entries = ctx.db->entries();

  // Count candidate extension items in the projected database.
  std::unordered_map<Item, std::uint64_t> support;
  for (const auto& p : proj) {
    const auto& seq = entries[p.entry].items;
    const std::uint64_t w = entries[p.entry].count;
    // Distinct items reachable from this entry (count each entry once).
    std::unordered_map<Item, bool> seen;
    if (ctx.params.contiguous) {
      for (const std::size_t end : p.ends) {
        if (end + 1 < seq.size()) seen[seq[end + 1]] = true;
      }
    } else {
      for (std::size_t i = p.ends.front() + 1; i < seq.size(); ++i) {
        seen[seq[i]] = true;
      }
    }
    for (const auto& [item, _] : seen) support[item] += w;
  }

  for (const auto& [item, sup] : support) {
    if (sup < ctx.min_support) continue;
    prefix.push_back(item);
    ctx.out->push_back(Pattern{prefix, sup});

    // Build the projection for the extended prefix.
    std::vector<Projection> next;
    for (const auto& p : proj) {
      const auto& seq = entries[p.entry].items;
      Projection np{p.entry, {}};
      if (ctx.params.contiguous) {
        for (const std::size_t end : p.ends) {
          if (end + 1 < seq.size() && seq[end + 1] == item) {
            np.ends.push_back(end + 1);
          }
        }
      } else {
        for (std::size_t i = p.ends.front() + 1; i < seq.size(); ++i) {
          if (seq[i] == item) {
            np.ends.push_back(i);  // earliest suffices for gapped
            break;
          }
        }
      }
      if (!np.ends.empty()) next.push_back(std::move(np));
    }
    const std::size_t bytes = projection_bytes(next);
    ctx.charge(bytes);
    grow(ctx, prefix, next);
    ctx.release(bytes);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<Pattern> PrefixSpan::mine(const SequenceDatabase& db,
                                      const MiningParams& params) const {
  std::vector<Pattern> out;
  if (db.empty() || params.max_length == 0) {
    last_memory_bytes_ = 0;
    return out;
  }
  Ctx ctx{&db, params, params.effective_min_support(db.total()), &out};

  // Level 1: every occurring item, with its initial projection.
  std::unordered_map<Item, std::uint64_t> support;
  std::unordered_map<Item, std::vector<Projection>> projections;
  const auto entries = db.entries();
  for (std::size_t e = 0; e < entries.size(); ++e) {
    std::unordered_map<Item, Projection> local;
    for (std::size_t i = 0; i < entries[e].items.size(); ++i) {
      auto& p = local[entries[e].items[i]];
      p.entry = e;
      p.ends.push_back(i);
    }
    for (auto& [item, p] : local) {
      support[item] += entries[e].count;
      if (!ctx.params.contiguous) p.ends.resize(1);  // earliest only
      projections[item].push_back(std::move(p));
    }
  }
  for (auto& [item, sup] : support) {
    if (sup < ctx.min_support) continue;
    out.push_back(Pattern{{item}, sup});
    Sequence prefix{item};
    const auto& proj = projections[item];
    const std::size_t bytes = projection_bytes(proj);
    ctx.charge(bytes);
    grow(ctx, prefix, proj);
    ctx.release(bytes);
  }
  last_memory_bytes_ = ctx.peak_bytes;
  return out;
}

}  // namespace mars::fsm
