#include "fsm/prefixspan.hpp"

#include <algorithm>

namespace mars::fsm {
namespace {

// Pseudo-projection: a projected database is a range of (entry, end)
// pairs inside a per-task arena — the position where the current prefix
// ends in that entry — instead of a copied projection structure. Child
// projections are appended to the arena and truncated on backtrack, so a
// whole root expansion costs one growing buffer. Pairs are ordered by
// entry (the build preserves order), which the extension counting uses to
// weight each entry once per item. Under gapped semantics only the
// earliest end matters (any later occurrence offers a subset of the
// extensions); under contiguous semantics every end can enable a
// different next item, so all of them are kept.
struct PosPair {
  std::uint32_t entry;
  std::uint32_t end;
};

struct Candidate {
  Item item;
  std::uint64_t support;
};

// Per-root-task scratch: the projection arena plus dense counting arrays
// sized to the item universe. ext_levels[d] holds depth d's candidate
// list, reused across siblings so steady-state DFS allocates nothing.
struct Scratch {
  std::vector<PosPair> arena;
  std::vector<std::uint64_t> counts;  // weighted support per item
  std::vector<std::uint32_t> mark;    // last entry-group that touched item
  std::vector<std::vector<Candidate>> ext_levels;
  std::uint32_t generation = 0;

  explicit Scratch(Item bound)
      : counts(bound, 0), mark(bound, 0) {}
};

struct Ctx {
  const SequenceDatabase* db;
  MiningParams params;
  std::uint64_t min_support;
};

void grow(const Ctx& ctx, Scratch& scratch, TaskSink& sink, Sequence& prefix,
          std::size_t lo, std::size_t hi, std::size_t depth) {
  if (prefix.size() >= ctx.params.max_length) return;
  const auto entries = ctx.db->entries();

  // Count candidate extension items over the projected range. Pairs are
  // grouped by entry; a fresh generation per group de-duplicates items so
  // each entry's weight counts once per item.
  if (scratch.ext_levels.size() <= depth) scratch.ext_levels.emplace_back();
  std::vector<Candidate>& ext = scratch.ext_levels[depth];
  ext.clear();
  std::size_t i = lo;
  while (i < hi) {
    const std::uint32_t entry = scratch.arena[i].entry;
    const auto& seq = entries[entry].items;
    const std::uint64_t w = entries[entry].count;
    ++scratch.generation;
    const auto touch = [&](Item item) {
      if (scratch.mark[item] == scratch.generation) return;
      scratch.mark[item] = scratch.generation;
      if (scratch.counts[item] == 0) ext.push_back({item, 0});
      scratch.counts[item] += w;
    };
    if (ctx.params.contiguous) {
      for (; i < hi && scratch.arena[i].entry == entry; ++i) {
        const std::size_t end = scratch.arena[i].end;
        if (end + 1 < seq.size()) touch(seq[end + 1]);
      }
    } else {
      // One pair per entry: everything after the earliest end is reachable.
      for (std::size_t p = scratch.arena[i].end + 1; p < seq.size(); ++p) {
        touch(seq[p]);
      }
      ++i;
    }
  }
  // Deterministic extension order regardless of arrival order.
  std::sort(ext.begin(), ext.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.item < b.item;
            });
  for (Candidate& c : ext) {
    c.support = scratch.counts[c.item];
    scratch.counts[c.item] = 0;  // reset for deeper levels
  }

  for (const Candidate& c : ext) {
    sink.count_node();
    if (c.support < ctx.min_support) continue;
    prefix.push_back(c.item);
    sink.emit(prefix, c.support);

    // Project: append the extended prefix's (entry, end) pairs.
    const std::size_t child_lo = scratch.arena.size();
    if (ctx.params.contiguous) {
      for (std::size_t j = lo; j < hi; ++j) {
        const PosPair p = scratch.arena[j];
        const auto& seq = entries[p.entry].items;
        if (p.end + 1 < seq.size() && seq[p.end + 1] == c.item) {
          scratch.arena.push_back({p.entry, p.end + 1});
        }
      }
    } else {
      for (std::size_t j = lo; j < hi; ++j) {
        const PosPair p = scratch.arena[j];
        const auto& seq = entries[p.entry].items;
        for (std::uint32_t q = p.end + 1; q < seq.size(); ++q) {
          if (seq[q] == c.item) {
            scratch.arena.push_back({p.entry, q});  // earliest suffices
            break;
          }
        }
      }
    }
    const std::size_t child_hi = scratch.arena.size();
    const std::size_t bytes = (child_hi - child_lo) * sizeof(PosPair);
    sink.charge(bytes);
    grow(ctx, scratch, sink, prefix, child_lo, child_hi, depth + 1);
    sink.release(bytes);
    scratch.arena.resize(child_lo);
    prefix.pop_back();
  }
}

}  // namespace

MineResult PrefixSpan::mine_with_stats(const SequenceDatabase& db,
                                       const MiningParams& params,
                                       parallel::ThreadPool* pool) const {
  const MineTimer timer;
  MineResult res;
  if (db.empty() || params.max_length == 0) {
    res.stats.wall_seconds = timer.seconds();
    return res;
  }
  const Ctx ctx{&db, params, params.effective_min_support(db.total())};
  const auto entries = db.entries();
  const Item bound = db.item_bound();

  // Level 1: weighted item supports plus each item's initial positions
  // (the vertical buckets every root projection starts from).
  std::vector<std::uint64_t> support(bound, 0);
  std::vector<std::uint32_t> mark(bound, 0);
  std::vector<std::vector<PosPair>> initial(bound);
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const auto& seq = entries[e].items;
    for (std::uint32_t i = 0; i < seq.size(); ++i) {
      const Item item = seq[i];
      if (mark[item] != e + 1) {
        mark[item] = e + 1;
        support[item] += entries[e].count;
        initial[item].push_back({static_cast<std::uint32_t>(e), i});
      } else if (params.contiguous) {
        // Gapped keeps only the earliest occurrence per entry.
        initial[item].push_back({static_cast<std::uint32_t>(e), i});
      }
    }
  }

  struct Root {
    Item item;
    std::uint64_t support;
  };
  std::vector<Root> roots;
  std::size_t base_bytes = 0;
  std::size_t l1_nodes = 0;
  for (Item item = 0; item < bound; ++item) {
    if (initial[item].empty()) continue;
    ++l1_nodes;
    if (support[item] < ctx.min_support) continue;
    roots.push_back({item, support[item]});
    base_bytes += initial[item].size() * sizeof(PosPair);
  }

  PoolGuard guard(params.threads, roots.size(), pool);
  res.stats = run_roots(
      roots.size(), base_bytes,
      [&](std::size_t r, TaskSink& sink) {
        const Root& root = roots[r];
        sink.emit({root.item}, root.support);
        Scratch scratch(bound);
        const auto& proj = initial[root.item];
        Sequence prefix{root.item};
        // Seed the arena with the root's projection so grow() sees one
        // uniform representation at every depth.
        scratch.arena.assign(proj.begin(), proj.end());
        sink.charge(scratch.arena.size() * sizeof(PosPair));
        grow(ctx, scratch, sink, prefix, 0, scratch.arena.size(), 0);
        sink.release(scratch.arena.size() * sizeof(PosPair));
      },
      res.patterns, guard.pool());
  res.stats.nodes_expanded += l1_nodes;
  res.stats.threads_used = guard.threads_used();
  res.stats.wall_seconds = timer.seconds();
  return res;
}

}  // namespace mars::fsm
