#pragma once
// Sequence database for Frequent Sequence Mining (paper §4.4.2).
//
// Sequences are packet paths (switch-id lists). The database is weighted:
// the traffic estimator (Alg. 2) expands one sampled record into `count`
// estimated packets, so a sequence with weight w counts as w occurrences
// toward support.
//
// Semantics note: MARS treats a length-2 pattern as a *link*, i.e. the two
// switches must be adjacent in the path. The paper's worked example
// confirms this (⟨s3,s4⟩ is absent from the result for paths ⟨s3,s2,s4⟩).
// Classic FSM allows gaps; MiningParams::contiguous selects between the
// two. All seven miners honour both settings and must agree exactly.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mars::fsm {

using Item = std::uint32_t;  ///< a switch id
using Sequence = std::vector<Item>;

struct WeightedSequence {
  Sequence items;
  std::uint64_t count = 1;
};

class SequenceDatabase {
 public:
  void add(Sequence seq, std::uint64_t count = 1) {
    if (seq.empty() || count == 0) return;
    total_ += count;
    entries_.push_back(WeightedSequence{std::move(seq), count});
  }

  [[nodiscard]] std::span<const WeightedSequence> entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t sequence_kinds() const { return entries_.size(); }
  /// Total weighted sequence count (the denominator of relative support).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Largest item id + 1 (dense item universe bound).
  [[nodiscard]] Item item_bound() const {
    Item bound = 0;
    for (const auto& e : entries_) {
      for (Item it : e.items) bound = std::max(bound, it + 1);
    }
    return bound;
  }

 private:
  std::vector<WeightedSequence> entries_;
  std::uint64_t total_ = 0;
};

/// A mined frequent pattern with its weighted support.
struct Pattern {
  Sequence items;
  std::uint64_t support = 0;

  bool operator==(const Pattern&) const = default;
};

struct MiningParams {
  /// Absolute minimum support (weighted). If `min_support_rel > 0`, the
  /// effective threshold is max(min_support_abs, rel * db.total()).
  std::uint64_t min_support_abs = 1;
  double min_support_rel = 0.0;
  /// MARS uses 2: singles (switches) and pairs (links).
  std::size_t max_length = 2;
  /// True: pattern items must be adjacent in the sequence (MARS links).
  /// False: classic subsequence-with-gaps semantics.
  bool contiguous = true;
  /// Worker threads for the mining engine's root-level task split. 1 (the
  /// default) runs fully inline — no pool, no extra threads; > 1 fans the
  /// frequent-item frontier out across a thread pool. Output is identical
  /// for every value (see fsm/engine.hpp's determinism contract).
  std::uint32_t threads = 1;

  [[nodiscard]] std::uint64_t effective_min_support(
      std::uint64_t total) const {
    const auto rel = static_cast<std::uint64_t>(
        min_support_rel * static_cast<double>(total) + 0.999999);
    return std::max<std::uint64_t>(std::max(min_support_abs, rel), 1);
  }
};

/// True if `pattern` occurs in `seq` under the given adjacency semantics.
[[nodiscard]] bool contains_pattern(std::span<const Item> seq,
                                    std::span<const Item> pattern,
                                    bool contiguous);

/// Canonical ordering for comparing miner outputs: by items
/// lexicographically (length first).
void sort_patterns(std::vector<Pattern>& patterns);

[[nodiscard]] std::string to_string(const Pattern& p);

}  // namespace mars::fsm
