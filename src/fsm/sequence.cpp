#include "fsm/sequence.hpp"

#include <algorithm>

namespace mars::fsm {

bool contains_pattern(std::span<const Item> seq, std::span<const Item> pattern,
                      bool contiguous) {
  if (pattern.empty()) return true;
  if (pattern.size() > seq.size()) return false;
  if (contiguous) {
    return std::search(seq.begin(), seq.end(), pattern.begin(),
                       pattern.end()) != seq.end();
  }
  std::size_t pi = 0;
  for (const Item item : seq) {
    if (item == pattern[pi] && ++pi == pattern.size()) return true;
  }
  return false;
}

void sort_patterns(std::vector<Pattern>& patterns) {
  std::sort(patterns.begin(), patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
}

std::string to_string(const Pattern& p) {
  std::string out = "<";
  for (std::size_t i = 0; i < p.items.size(); ++i) {
    if (i) out += ",";
    out += "s" + std::to_string(p.items[i]);
  }
  out += ">:" + std::to_string(p.support);
  return out;
}

}  // namespace mars::fsm
