#include "fsm/spade.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace mars::fsm {
namespace {

// Vertical id-list of a pattern: for each database entry containing it,
// the sorted positions where an occurrence *ends*.
struct IdList {
  struct PerEntry {
    std::size_t entry;
    std::vector<std::uint32_t> ends;
  };
  std::vector<PerEntry> entries;

  [[nodiscard]] std::uint64_t support(const SequenceDatabase& db) const {
    std::uint64_t sup = 0;
    for (const auto& e : entries) sup += db.entries()[e.entry].count;
    return sup;
  }

  [[nodiscard]] std::size_t bytes() const {
    std::size_t b = entries.size() * sizeof(PerEntry);
    for (const auto& e : entries) b += e.ends.size() * 4;
    return b;
  }
};

/// Temporal join: occurrences of (pattern ++ item).
IdList join(const IdList& pattern, const IdList& item, bool contiguous) {
  IdList out;
  std::size_t pi = 0, ii = 0;
  while (pi < pattern.entries.size() && ii < item.entries.size()) {
    const auto& pe = pattern.entries[pi];
    const auto& ie = item.entries[ii];
    if (pe.entry < ie.entry) {
      ++pi;
    } else if (ie.entry < pe.entry) {
      ++ii;
    } else {
      IdList::PerEntry ne{pe.entry, {}};
      if (contiguous) {
        // End positions q = p+1 with p a pattern end and q an item position.
        for (const std::uint32_t p : pe.ends) {
          if (std::binary_search(ie.ends.begin(), ie.ends.end(), p + 1)) {
            ne.ends.push_back(p + 1);
          }
        }
      } else {
        // Any item position strictly after the earliest pattern end.
        const std::uint32_t first = pe.ends.front();
        for (const std::uint32_t q : ie.ends) {
          if (q > first) ne.ends.push_back(q);
        }
      }
      if (!ne.ends.empty()) out.entries.push_back(std::move(ne));
      ++pi;
      ++ii;
    }
  }
  return out;
}

using Cmap = std::unordered_map<std::uint64_t, std::uint64_t>;

std::uint64_t pair_key(Item a, Item b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// One-scan co-occurrence map: weighted support of every 2-pattern.
Cmap build_cmap(const SequenceDatabase& db, bool contiguous) {
  Cmap cmap;
  for (const auto& e : db.entries()) {
    std::unordered_set<std::uint64_t> seen;
    const auto& s = e.items;
    if (contiguous) {
      for (std::size_t i = 0; i + 1 < s.size(); ++i) {
        seen.insert(pair_key(s[i], s[i + 1]));
      }
    } else {
      for (std::size_t i = 0; i < s.size(); ++i) {
        for (std::size_t j = i + 1; j < s.size(); ++j) {
          seen.insert(pair_key(s[i], s[j]));
        }
      }
    }
    for (const std::uint64_t key : seen) cmap[key] += e.count;
  }
  return cmap;
}

struct Ctx {
  const SequenceDatabase* db;
  MiningParams params;
  std::uint64_t min_support;
  const std::vector<std::pair<Item, IdList>>* frequent_items;
  const Cmap* cmap;
  std::vector<Pattern>* out;
  std::size_t peak_bytes = 0;
  std::size_t live_bytes = 0;
};

void dfs(Ctx& ctx, Sequence& prefix, const IdList& prefix_list) {
  if (prefix.size() >= ctx.params.max_length) return;
  for (const auto& [item, item_list] : *ctx.frequent_items) {
    if (ctx.cmap) {
      // CMAP prune: if <last(prefix), item> cannot be frequent, the longer
      // pattern cannot be either.
      const auto it = ctx.cmap->find(pair_key(prefix.back(), item));
      if (it == ctx.cmap->end() || it->second < ctx.min_support) continue;
    }
    IdList joined = join(prefix_list, item_list, ctx.params.contiguous);
    const std::uint64_t sup = joined.support(*ctx.db);
    if (sup < ctx.min_support) continue;
    prefix.push_back(item);
    ctx.out->push_back(Pattern{prefix, sup});
    const std::size_t bytes = joined.bytes();
    ctx.live_bytes += bytes;
    ctx.peak_bytes = std::max(ctx.peak_bytes, ctx.live_bytes);
    dfs(ctx, prefix, joined);
    ctx.live_bytes -= bytes;
    prefix.pop_back();
  }
}

}  // namespace

std::vector<Pattern> Spade::mine(const SequenceDatabase& db,
                                 const MiningParams& params) const {
  std::vector<Pattern> out;
  last_memory_bytes_ = 0;
  if (db.empty() || params.max_length == 0) return out;
  const std::uint64_t min_sup = params.effective_min_support(db.total());

  // Vertical scan: id-list per item.
  std::unordered_map<Item, IdList> vertical;
  const auto entries = db.entries();
  for (std::size_t e = 0; e < entries.size(); ++e) {
    std::unordered_map<Item, IdList::PerEntry> local;
    for (std::size_t i = 0; i < entries[e].items.size(); ++i) {
      auto& pe = local[entries[e].items[i]];
      pe.entry = e;
      pe.ends.push_back(static_cast<std::uint32_t>(i));
    }
    for (auto& [item, pe] : local) {
      vertical[item].entries.push_back(std::move(pe));
    }
  }

  std::vector<std::pair<Item, IdList>> frequent_items;
  std::size_t base_bytes = 0;
  for (auto& [item, list] : vertical) {
    const std::uint64_t sup = list.support(db);
    if (sup < min_sup) continue;
    out.push_back(Pattern{{item}, sup});
    base_bytes += list.bytes();
    frequent_items.emplace_back(item, std::move(list));
  }
  std::sort(frequent_items.begin(), frequent_items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  Cmap cmap;
  if (use_cmap_) {
    cmap = build_cmap(db, params.contiguous);
    base_bytes += cmap.size() * 16;
  }

  Ctx ctx{&db,
          params,
          min_sup,
          &frequent_items,
          use_cmap_ ? &cmap : nullptr,
          &out,
          base_bytes,
          base_bytes};
  for (const auto& [item, list] : frequent_items) {
    Sequence prefix{item};
    dfs(ctx, prefix, list);
  }
  last_memory_bytes_ = ctx.peak_bytes;
  return out;
}

}  // namespace mars::fsm
