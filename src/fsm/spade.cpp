#include "fsm/spade.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace mars::fsm {
namespace {

// Vertical id-list of a pattern: for each database entry containing it,
// the sorted positions where an occurrence *ends*.
struct IdList {
  struct PerEntry {
    std::size_t entry;
    std::vector<std::uint32_t> ends;
  };
  std::vector<PerEntry> entries;

  [[nodiscard]] std::uint64_t support(const SequenceDatabase& db) const {
    std::uint64_t sup = 0;
    for (const auto& e : entries) sup += db.entries()[e.entry].count;
    return sup;
  }

  [[nodiscard]] std::size_t bytes() const {
    std::size_t b = entries.size() * sizeof(PerEntry);
    for (const auto& e : entries) b += e.ends.size() * 4;
    return b;
  }
};

/// Temporal join: occurrences of (pattern ++ item).
IdList join(const IdList& pattern, const IdList& item, bool contiguous) {
  IdList out;
  std::size_t pi = 0, ii = 0;
  while (pi < pattern.entries.size() && ii < item.entries.size()) {
    const auto& pe = pattern.entries[pi];
    const auto& ie = item.entries[ii];
    if (pe.entry < ie.entry) {
      ++pi;
    } else if (ie.entry < pe.entry) {
      ++ii;
    } else {
      IdList::PerEntry ne{pe.entry, {}};
      if (contiguous) {
        // End positions q = p+1 with p a pattern end and q an item position.
        for (const std::uint32_t p : pe.ends) {
          if (std::binary_search(ie.ends.begin(), ie.ends.end(), p + 1)) {
            ne.ends.push_back(p + 1);
          }
        }
      } else {
        // Any item position strictly after the earliest pattern end.
        const std::uint32_t first = pe.ends.front();
        for (const std::uint32_t q : ie.ends) {
          if (q > first) ne.ends.push_back(q);
        }
      }
      if (!ne.ends.empty()) out.entries.push_back(std::move(ne));
      ++pi;
      ++ii;
    }
  }
  return out;
}

using Cmap = std::unordered_map<std::uint64_t, std::uint64_t>;

std::uint64_t pair_key(Item a, Item b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// One-scan co-occurrence map: weighted support of every 2-pattern.
Cmap build_cmap(const SequenceDatabase& db, bool contiguous) {
  Cmap cmap;
  for (const auto& e : db.entries()) {
    std::unordered_set<std::uint64_t> seen;
    const auto& s = e.items;
    if (contiguous) {
      for (std::size_t i = 0; i + 1 < s.size(); ++i) {
        seen.insert(pair_key(s[i], s[i + 1]));
      }
    } else {
      for (std::size_t i = 0; i < s.size(); ++i) {
        for (std::size_t j = i + 1; j < s.size(); ++j) {
          seen.insert(pair_key(s[i], s[j]));
        }
      }
    }
    for (const std::uint64_t key : seen) cmap[key] += e.count;
  }
  return cmap;
}

struct Ctx {
  const SequenceDatabase* db;
  MiningParams params;
  std::uint64_t min_support;
  const std::vector<std::pair<Item, IdList>>* frequent_items;
  const Cmap* cmap;
};

void dfs(const Ctx& ctx, TaskSink& sink, Sequence& prefix,
         const IdList& prefix_list) {
  if (prefix.size() >= ctx.params.max_length) return;
  for (const auto& [item, item_list] : *ctx.frequent_items) {
    if (ctx.cmap != nullptr) {
      // CMAP prune: if <last(prefix), item> cannot be frequent, the longer
      // pattern cannot be either.
      const auto it = ctx.cmap->find(pair_key(prefix.back(), item));
      if (it == ctx.cmap->end() || it->second < ctx.min_support) continue;
    }
    IdList joined = join(prefix_list, item_list, ctx.params.contiguous);
    const std::uint64_t sup = joined.support(*ctx.db);
    sink.count_node();
    if (sup < ctx.min_support) continue;
    prefix.push_back(item);
    sink.emit(prefix, sup);
    const std::size_t bytes = joined.bytes();
    sink.charge(bytes);
    dfs(ctx, sink, prefix, joined);
    sink.release(bytes);
    prefix.pop_back();
  }
}

}  // namespace

MineResult Spade::mine_with_stats(const SequenceDatabase& db,
                                  const MiningParams& params,
                                  parallel::ThreadPool* pool) const {
  const MineTimer timer;
  MineResult res;
  if (db.empty() || params.max_length == 0) {
    res.stats.wall_seconds = timer.seconds();
    return res;
  }
  const std::uint64_t min_sup = params.effective_min_support(db.total());

  // Vertical scan: id-list per item.
  std::unordered_map<Item, IdList> vertical;
  const auto entries = db.entries();
  for (std::size_t e = 0; e < entries.size(); ++e) {
    std::unordered_map<Item, IdList::PerEntry> local;
    for (std::size_t i = 0; i < entries[e].items.size(); ++i) {
      auto& pe = local[entries[e].items[i]];
      pe.entry = e;
      pe.ends.push_back(static_cast<std::uint32_t>(i));
    }
    for (auto& [item, pe] : local) {
      vertical[item].entries.push_back(std::move(pe));
    }
  }

  std::vector<std::pair<Item, IdList>> frequent_items;
  std::vector<std::uint64_t> root_support;
  std::size_t base_bytes = 0;
  std::size_t l1_nodes = 0;
  for (auto& [item, list] : vertical) {
    ++l1_nodes;
    const std::uint64_t sup = list.support(db);
    if (sup < min_sup) continue;
    base_bytes += list.bytes();
    frequent_items.emplace_back(item, std::move(list));
  }
  std::sort(frequent_items.begin(), frequent_items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  root_support.reserve(frequent_items.size());
  for (const auto& [item, list] : frequent_items) {
    root_support.push_back(list.support(db));
  }

  Cmap cmap;
  if (use_cmap_) {
    cmap = build_cmap(db, params.contiguous);
    base_bytes += cmap.size() * 16;
  }

  const Ctx ctx{&db, params, min_sup, &frequent_items,
                use_cmap_ ? &cmap : nullptr};
  PoolGuard guard(params.threads, frequent_items.size(), pool);
  res.stats = run_roots(
      frequent_items.size(), base_bytes,
      [&](std::size_t r, TaskSink& sink) {
        const auto& [item, list] = frequent_items[r];
        sink.emit({item}, root_support[r]);
        Sequence prefix{item};
        dfs(ctx, sink, prefix, list);
      },
      res.patterns, guard.pool());
  res.stats.nodes_expanded += l1_nodes;
  res.stats.threads_used = guard.threads_used();
  res.stats.wall_seconds = timer.seconds();
  return res;
}

}  // namespace mars::fsm
