#include "fsm/postprocess.hpp"

#include <algorithm>

namespace mars::fsm {

bool is_proper_subpattern(const Pattern& inner, const Pattern& outer,
                          bool contiguous) {
  if (inner.items.size() >= outer.items.size()) return false;
  return contains_pattern(outer.items, inner.items, contiguous);
}

std::vector<Pattern> closed_patterns(std::vector<Pattern> patterns,
                                     bool contiguous) {
  std::vector<Pattern> out;
  out.reserve(patterns.size());
  for (const Pattern& candidate : patterns) {
    bool closed = true;
    for (const Pattern& other : patterns) {
      if (is_proper_subpattern(candidate, other, contiguous) &&
          other.support >= candidate.support) {
        closed = false;
        break;
      }
    }
    if (closed) out.push_back(candidate);
  }
  return out;
}

std::vector<Pattern> top_k_patterns(std::vector<Pattern> patterns,
                                    std::size_t k) {
  std::sort(patterns.begin(), patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  if (patterns.size() > k) patterns.resize(k);
  return patterns;
}

}  // namespace mars::fsm
