#pragma once
// Pattern post-processing on top of any miner's output:
//
//   - closed patterns: drop every pattern that has a super-pattern with
//     the SAME support (the super-pattern carries strictly more location
//     information at no evidence cost — for MARS, prefer reporting the
//     link over both of its endpoints when their supports are equal);
//   - top-k by support: keep only the k best-supported patterns, with a
//     deterministic tie order.
//
// Both run in O(n^2 · len) over the (small) pattern set, which is far
// below mining cost for MARS's max-length-2 configuration.

#include <vector>

#include "fsm/sequence.hpp"

namespace mars::fsm {

/// True if `inner` occurs in `outer` under the adjacency semantics and
/// the two differ.
[[nodiscard]] bool is_proper_subpattern(const Pattern& inner,
                                        const Pattern& outer,
                                        bool contiguous);

/// Keep only closed patterns: those with no proper super-pattern of equal
/// (or greater) support in the set. Preserves input order.
[[nodiscard]] std::vector<Pattern> closed_patterns(
    std::vector<Pattern> patterns, bool contiguous);

/// The k best-supported patterns, sorted by support descending; ties
/// break shorter-first then lexicographic (a switch outranks a link at
/// equal support unless closed_patterns already removed it).
[[nodiscard]] std::vector<Pattern> top_k_patterns(
    std::vector<Pattern> patterns, std::size_t k);

}  // namespace mars::fsm
