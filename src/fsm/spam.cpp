#include "fsm/spam.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace mars::fsm {
namespace {

// One 64-bit word per database entry; bit i set = "position i".
using Bitmap = std::vector<std::uint64_t>;

std::uint64_t pair_key(Item a, Item b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

struct Ctx {
  const SequenceDatabase* db;
  MiningParams params;
  std::uint64_t min_support;
  const std::vector<std::pair<Item, Bitmap>>* frequent_items;
  // LAPIN: last position of each frequent item per entry (-1 if absent).
  const std::vector<std::vector<int>>* last_pos;  // [item_idx][entry]
  const std::unordered_map<std::uint64_t, std::uint64_t>* cmap;
  std::vector<Pattern>* out;
  std::size_t peak_bytes = 0;
  std::size_t live_bytes = 0;
};

std::uint64_t bitmap_support(const SequenceDatabase& db, const Bitmap& bm) {
  std::uint64_t sup = 0;
  const auto entries = db.entries();
  for (std::size_t e = 0; e < bm.size(); ++e) {
    if (bm[e] != 0) sup += entries[e].count;
  }
  return sup;
}

void dfs(Ctx& ctx, Sequence& prefix, const Bitmap& prefix_bm) {
  if (prefix.size() >= ctx.params.max_length) return;
  const auto& items = *ctx.frequent_items;
  for (std::size_t idx = 0; idx < items.size(); ++idx) {
    const auto& [item, item_bm] = items[idx];
    if (ctx.cmap) {
      const auto it = ctx.cmap->find(pair_key(prefix.back(), item));
      if (it == ctx.cmap->end() || it->second < ctx.min_support) continue;
    }
    Bitmap next(prefix_bm.size(), 0);
    for (std::size_t e = 0; e < prefix_bm.size(); ++e) {
      const std::uint64_t b = prefix_bm[e];
      if (b == 0) continue;
      if (ctx.last_pos) {
        // LAPIN check: the item's last position must be strictly after the
        // prefix's first end position in this sequence.
        const int last = (*ctx.last_pos)[idx][e];
        if (last < 0 ||
            static_cast<unsigned>(last) <=
                static_cast<unsigned>(std::countr_zero(b))) {
          continue;
        }
      }
      std::uint64_t mask;
      if (ctx.params.contiguous) {
        mask = b << 1;  // S-step to the immediately following position
      } else {
        const std::uint64_t low = b & (~b + 1);  // lowest set bit
        mask = ~(low | (low - 1));  // all positions strictly above it
      }
      next[e] = mask & item_bm[e];
    }
    const std::uint64_t sup = bitmap_support(*ctx.db, next);
    if (sup < ctx.min_support) continue;
    prefix.push_back(item);
    ctx.out->push_back(Pattern{prefix, sup});
    const std::size_t bytes = next.size() * 8;
    ctx.live_bytes += bytes;
    ctx.peak_bytes = std::max(ctx.peak_bytes, ctx.live_bytes);
    dfs(ctx, prefix, next);
    ctx.live_bytes -= bytes;
    prefix.pop_back();
  }
}

}  // namespace

std::vector<Pattern> Spam::mine(const SequenceDatabase& db,
                                const MiningParams& params) const {
  std::vector<Pattern> out;
  last_memory_bytes_ = 0;
  if (db.empty() || params.max_length == 0) return out;
  const std::uint64_t min_sup = params.effective_min_support(db.total());
  const auto entries = db.entries();

  // Vertical bitmaps per item.
  std::unordered_map<Item, Bitmap> vertical;
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const auto& seq = entries[e].items;
    if (seq.size() > 64) {
      throw std::invalid_argument(
          "Spam: sequence longer than 64 positions unsupported");
    }
    for (std::size_t i = 0; i < seq.size(); ++i) {
      Bitmap& bm = vertical[seq[i]];
      bm.resize(entries.size(), 0);
      bm[e] |= (1ull << i);
    }
  }

  std::vector<std::pair<Item, Bitmap>> frequent_items;
  for (auto& [item, bm] : vertical) {
    bm.resize(entries.size(), 0);
    const std::uint64_t sup = bitmap_support(db, bm);
    if (sup < min_sup) continue;
    out.push_back(Pattern{{item}, sup});
    frequent_items.emplace_back(item, std::move(bm));
  }
  std::sort(frequent_items.begin(), frequent_items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::size_t base_bytes = frequent_items.size() * entries.size() * 8;

  // LAPIN last-position table.
  std::vector<std::vector<int>> last_pos;
  if (options_.use_lapin) {
    last_pos.assign(frequent_items.size(),
                    std::vector<int>(entries.size(), -1));
    for (std::size_t idx = 0; idx < frequent_items.size(); ++idx) {
      const Bitmap& bm = frequent_items[idx].second;
      for (std::size_t e = 0; e < entries.size(); ++e) {
        if (bm[e] != 0) {
          last_pos[idx][e] = 63 - std::countl_zero(bm[e]);
        }
      }
    }
    base_bytes += frequent_items.size() * entries.size() * sizeof(int);
  }

  // CM-SPAM co-occurrence map.
  std::unordered_map<std::uint64_t, std::uint64_t> cmap;
  if (options_.use_cmap) {
    for (const auto& e : entries) {
      std::unordered_set<std::uint64_t> seen;
      const auto& s = e.items;
      if (params.contiguous) {
        for (std::size_t i = 0; i + 1 < s.size(); ++i) {
          seen.insert(pair_key(s[i], s[i + 1]));
        }
      } else {
        for (std::size_t i = 0; i < s.size(); ++i) {
          for (std::size_t j = i + 1; j < s.size(); ++j) {
            seen.insert(pair_key(s[i], s[j]));
          }
        }
      }
      for (const std::uint64_t key : seen) cmap[key] += e.count;
    }
    base_bytes += cmap.size() * 16;
  }

  Ctx ctx{&db,
          params,
          min_sup,
          &frequent_items,
          options_.use_lapin ? &last_pos : nullptr,
          options_.use_cmap ? &cmap : nullptr,
          &out,
          base_bytes,
          base_bytes};
  for (const auto& [item, bm] : frequent_items) {
    Sequence prefix{item};
    dfs(ctx, prefix, bm);
  }
  last_memory_bytes_ = ctx.peak_bytes;
  return out;
}

}  // namespace mars::fsm
