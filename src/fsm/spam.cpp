#include "fsm/spam.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace mars::fsm {
namespace {

// Vertical bitmaps over a multi-word layout: entry e's positions occupy
// words [word_off[e], word_off[e+1]) of every bitmap, one bit per
// position. ceil(len/64) words per entry removes the historical 64-
// position cap (a >64-hop path used to throw std::invalid_argument and
// abort the diagnosis).
using Words = std::vector<std::uint64_t>;

struct Layout {
  std::vector<std::uint32_t> word_off;  // entries + 1 prefix sums

  [[nodiscard]] std::size_t total_words() const { return word_off.back(); }
  [[nodiscard]] std::size_t bytes() const {
    return total_words() * sizeof(std::uint64_t);
  }
};

std::uint64_t pair_key(Item a, Item b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Position of the lowest set bit of `bm` within entry e, or -1 if clear.
int first_position(const Words& bm, const Layout& layout, std::size_t e) {
  for (std::uint32_t w = layout.word_off[e]; w < layout.word_off[e + 1];
       ++w) {
    if (bm[w] != 0) {
      return static_cast<int>((w - layout.word_off[e]) * 64 +
                              static_cast<unsigned>(std::countr_zero(bm[w])));
    }
  }
  return -1;
}

struct FrequentItem {
  Item item;
  Words bitmap;
};

struct Ctx {
  const SequenceDatabase* db;
  const Layout* layout;
  MiningParams params;
  std::uint64_t min_support;
  const std::vector<FrequentItem>* frequent;
  // LAPIN: last position of each frequent item per entry (-1 if absent).
  const std::vector<std::vector<int>>* last_pos;  // [item_idx][entry]
  const std::unordered_map<std::uint64_t, std::uint64_t>* cmap;
};

// Per-root DFS scratch: one bitmap buffer per depth, reused across
// siblings so the whole expansion allocates max_depth buffers total.
// A deque because recursion holds references into earlier levels while
// deeper calls append — deque growth never invalidates them.
struct Scratch {
  std::deque<Words> levels;
  std::size_t charged = 0;
};

void dfs(const Ctx& ctx, Scratch& scratch, TaskSink& sink, Sequence& prefix,
         const Words& prefix_bm, std::size_t depth) {
  if (prefix.size() >= ctx.params.max_length) return;
  const Layout& layout = *ctx.layout;
  const auto entries = ctx.db->entries();
  const auto& frequent = *ctx.frequent;
  if (scratch.levels.size() <= depth) {
    scratch.levels.emplace_back(layout.total_words());
    scratch.charged += layout.bytes();
    sink.charge(layout.bytes());
  }
  Words& next = scratch.levels[depth];

  for (std::size_t idx = 0; idx < frequent.size(); ++idx) {
    const auto& [item, item_bm] = frequent[idx];
    if (ctx.cmap != nullptr) {
      const auto it = ctx.cmap->find(pair_key(prefix.back(), item));
      if (it == ctx.cmap->end() || it->second < ctx.min_support) continue;
    }
    std::uint64_t sup = 0;
    for (std::size_t e = 0; e < entries.size(); ++e) {
      const std::uint32_t w0 = layout.word_off[e];
      const std::uint32_t w1 = layout.word_off[e + 1];
      bool prefix_present = false;
      for (std::uint32_t w = w0; w < w1; ++w) {
        if (prefix_bm[w] != 0) {
          prefix_present = true;
          break;
        }
      }
      bool skip = !prefix_present;
      if (!skip && ctx.last_pos != nullptr) {
        // LAPIN check: the item's last position must be strictly after
        // the prefix's first end position in this sequence.
        const int last = (*ctx.last_pos)[idx][e];
        skip = last < 0 || last <= first_position(prefix_bm, layout, e);
      }
      if (skip) {
        std::fill(next.begin() + w0, next.begin() + w1, 0);
        continue;
      }
      std::uint64_t any = 0;
      if (ctx.params.contiguous) {
        // S-step to the immediately following position: shift left by one
        // with carry across the entry's words.
        std::uint64_t carry = 0;
        for (std::uint32_t w = w0; w < w1; ++w) {
          const std::uint64_t b = prefix_bm[w];
          const std::uint64_t v = ((b << 1) | carry) & item_bm[w];
          carry = b >> 63;
          next[w] = v;
          any |= v;
        }
      } else {
        // All positions strictly above the prefix's lowest set bit.
        std::uint32_t w = w0;
        while (w < w1 && prefix_bm[w] == 0) {
          next[w] = 0;
          ++w;
        }
        const std::uint64_t low = prefix_bm[w] & (~prefix_bm[w] + 1);
        std::uint64_t v = ~(low | (low - 1)) & item_bm[w];
        next[w] = v;
        any |= v;
        for (++w; w < w1; ++w) {
          v = item_bm[w];
          next[w] = v;
          any |= v;
        }
      }
      if (any != 0) sup += entries[e].count;
    }
    sink.count_node();
    if (sup < ctx.min_support) continue;
    prefix.push_back(item);
    sink.emit(prefix, sup);
    dfs(ctx, scratch, sink, prefix, next, depth + 1);
    prefix.pop_back();
  }
}

}  // namespace

MineResult Spam::mine_with_stats(const SequenceDatabase& db,
                                 const MiningParams& params,
                                 parallel::ThreadPool* pool) const {
  const MineTimer timer;
  MineResult res;
  if (db.empty() || params.max_length == 0) {
    res.stats.wall_seconds = timer.seconds();
    return res;
  }
  const std::uint64_t min_sup = params.effective_min_support(db.total());
  const auto entries = db.entries();
  const Item bound = db.item_bound();

  Layout layout;
  layout.word_off.reserve(entries.size() + 1);
  layout.word_off.push_back(0);
  for (const auto& e : entries) {
    layout.word_off.push_back(layout.word_off.back() +
                              static_cast<std::uint32_t>(
                                  (e.items.size() + 63) / 64));
  }

  // Vertical bitmaps per item, plus weighted supports (deduplicated per
  // entry by construction: a bit is set once, support counted per entry).
  std::vector<Words> vertical(bound);
  std::vector<std::uint64_t> support(bound, 0);
  std::vector<std::uint32_t> mark(bound, 0);
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const auto& seq = entries[e].items;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const Item item = seq[i];
      Words& bm = vertical[item];
      if (bm.empty()) bm.resize(layout.total_words(), 0);
      bm[layout.word_off[e] + i / 64] |= (1ull << (i % 64));
      if (mark[item] != e + 1) {
        mark[item] = e + 1;
        support[item] += entries[e].count;
      }
    }
  }

  std::vector<FrequentItem> frequent;
  std::size_t l1_nodes = 0;
  for (Item item = 0; item < bound; ++item) {
    if (vertical[item].empty()) continue;
    ++l1_nodes;
    if (support[item] < min_sup) continue;
    frequent.push_back({item, std::move(vertical[item])});
  }

  std::size_t base_bytes = frequent.size() * layout.bytes();

  // LAPIN last-position table.
  std::vector<std::vector<int>> last_pos;
  if (options_.use_lapin) {
    last_pos.assign(frequent.size(), std::vector<int>(entries.size(), -1));
    for (std::size_t idx = 0; idx < frequent.size(); ++idx) {
      const Words& bm = frequent[idx].bitmap;
      for (std::size_t e = 0; e < entries.size(); ++e) {
        for (std::uint32_t w = layout.word_off[e + 1];
             w > layout.word_off[e]; --w) {
          if (bm[w - 1] != 0) {
            last_pos[idx][e] = static_cast<int>(
                (w - 1 - layout.word_off[e]) * 64 +
                (63 - static_cast<unsigned>(std::countl_zero(bm[w - 1]))));
            break;
          }
        }
      }
    }
    base_bytes += frequent.size() * entries.size() * sizeof(int);
  }

  // CM-SPAM co-occurrence map.
  std::unordered_map<std::uint64_t, std::uint64_t> cmap;
  if (options_.use_cmap) {
    for (const auto& e : entries) {
      std::unordered_set<std::uint64_t> seen;
      const auto& s = e.items;
      if (params.contiguous) {
        for (std::size_t i = 0; i + 1 < s.size(); ++i) {
          seen.insert(pair_key(s[i], s[i + 1]));
        }
      } else {
        for (std::size_t i = 0; i < s.size(); ++i) {
          for (std::size_t j = i + 1; j < s.size(); ++j) {
            seen.insert(pair_key(s[i], s[j]));
          }
        }
      }
      for (const std::uint64_t key : seen) cmap[key] += e.count;
    }
    base_bytes += cmap.size() * 16;
  }

  const Ctx ctx{&db,
                &layout,
                params,
                min_sup,
                &frequent,
                options_.use_lapin ? &last_pos : nullptr,
                options_.use_cmap ? &cmap : nullptr};
  PoolGuard guard(params.threads, frequent.size(), pool);
  res.stats = run_roots(
      frequent.size(), base_bytes,
      [&](std::size_t r, TaskSink& sink) {
        const FrequentItem& root = frequent[r];
        sink.emit({root.item}, support[root.item]);
        Scratch scratch;
        Sequence prefix{root.item};
        dfs(ctx, scratch, sink, prefix, root.bitmap, 0);
        sink.release(scratch.charged);
      },
      res.patterns, guard.pool());
  res.stats.nodes_expanded += l1_nodes;
  res.stats.threads_used = guard.threads_used();
  res.stats.wall_seconds = timer.seconds();
  return res;
}

}  // namespace mars::fsm
