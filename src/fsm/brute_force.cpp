#include "fsm/brute_force.hpp"

#include <set>

namespace mars::fsm {
namespace {

// All distinct subsequences of `seq` up to `max_len` under the semantics.
void collect_candidates(const Sequence& seq, std::size_t max_len,
                        bool contiguous, std::set<Sequence>& out) {
  if (contiguous) {
    for (std::size_t i = 0; i < seq.size(); ++i) {
      Sequence cand;
      for (std::size_t j = i; j < seq.size() && cand.size() < max_len; ++j) {
        cand.push_back(seq[j]);
        out.insert(cand);
      }
    }
    return;
  }
  // Gapped: DFS over index choices.
  Sequence cand;
  auto dfs = [&](auto&& self, std::size_t start) -> void {
    if (cand.size() >= max_len) return;
    for (std::size_t i = start; i < seq.size(); ++i) {
      cand.push_back(seq[i]);
      out.insert(cand);
      self(self, i + 1);
      cand.pop_back();
    }
  };
  dfs(dfs, 0);
}

}  // namespace

std::vector<Pattern> BruteForce::mine(const SequenceDatabase& db,
                                      const MiningParams& params) const {
  std::vector<Pattern> out;
  if (db.empty() || params.max_length == 0) return out;
  const std::uint64_t min_sup = params.effective_min_support(db.total());

  std::set<Sequence> candidates;
  for (const auto& e : db.entries()) {
    collect_candidates(e.items, params.max_length, params.contiguous,
                       candidates);
  }
  for (const auto& cand : candidates) {
    std::uint64_t sup = 0;
    for (const auto& e : db.entries()) {
      if (contains_pattern(e.items, cand, params.contiguous)) sup += e.count;
    }
    if (sup >= min_sup) out.push_back(Pattern{cand, sup});
  }
  last_memory_bytes_ = candidates.size() * sizeof(Sequence);
  return out;
}

}  // namespace mars::fsm
