#include "fsm/brute_force.hpp"

#include <set>

namespace mars::fsm {
namespace {

// All distinct subsequences of `seq` up to `max_len` under the semantics.
void collect_candidates(const Sequence& seq, std::size_t max_len,
                        bool contiguous, std::set<Sequence>& out) {
  if (contiguous) {
    for (std::size_t i = 0; i < seq.size(); ++i) {
      Sequence cand;
      for (std::size_t j = i; j < seq.size() && cand.size() < max_len; ++j) {
        cand.push_back(seq[j]);
        out.insert(cand);
      }
    }
    return;
  }
  // Gapped: DFS over index choices.
  Sequence cand;
  auto dfs = [&](auto&& self, std::size_t start) -> void {
    if (cand.size() >= max_len) return;
    for (std::size_t i = start; i < seq.size(); ++i) {
      cand.push_back(seq[i]);
      out.insert(cand);
      self(self, i + 1);
      cand.pop_back();
    }
  };
  dfs(dfs, 0);
}

}  // namespace

MineResult BruteForce::mine_with_stats(const SequenceDatabase& db,
                                       const MiningParams& params,
                                       parallel::ThreadPool* /*pool*/) const {
  const MineTimer timer;
  MineResult res;
  if (db.empty() || params.max_length == 0) {
    res.stats.wall_seconds = timer.seconds();
    return res;
  }
  const std::uint64_t min_sup = params.effective_min_support(db.total());

  std::set<Sequence> candidates;
  std::size_t candidate_bytes = 0;
  for (const auto& e : db.entries()) {
    collect_candidates(e.items, params.max_length, params.contiguous,
                       candidates);
  }
  for (const auto& cand : candidates) {
    candidate_bytes += sizeof(Sequence) + cand.size() * sizeof(Item);
    std::uint64_t sup = 0;
    for (const auto& e : db.entries()) {
      if (contains_pattern(e.items, cand, params.contiguous)) sup += e.count;
    }
    if (sup >= min_sup) res.patterns.push_back(Pattern{cand, sup});
  }
  res.stats.patterns = res.patterns.size();
  res.stats.nodes_expanded = candidates.size();
  res.stats.peak_bytes = candidate_bytes;
  res.stats.wall_seconds = timer.seconds();
  return res;
}

}  // namespace mars::fsm
