#include "fsm/miner.hpp"

#include "fsm/gsp.hpp"
#include "fsm/prefixspan.hpp"
#include "fsm/spade.hpp"
#include "fsm/spam.hpp"

namespace mars::fsm {

std::unique_ptr<Miner> make_miner(MinerKind kind) {
  switch (kind) {
    case MinerKind::kPrefixSpan:
      return std::make_unique<PrefixSpan>();
    case MinerKind::kGsp:
      return std::make_unique<Gsp>();
    case MinerKind::kSpade:
      return std::make_unique<Spade>(/*use_cmap=*/false);
    case MinerKind::kSpam:
      return std::make_unique<Spam>();
    case MinerKind::kLapin:
      return std::make_unique<Spam>(Spam::Options{.use_lapin = true});
    case MinerKind::kCmSpade:
      return std::make_unique<Spade>(/*use_cmap=*/true);
    case MinerKind::kCmSpam:
      return std::make_unique<Spam>(Spam::Options{.use_cmap = true});
  }
  return nullptr;
}

std::vector<MinerKind> all_miner_kinds() {
  return {MinerKind::kPrefixSpan, MinerKind::kGsp,     MinerKind::kSpade,
          MinerKind::kSpam,       MinerKind::kLapin,   MinerKind::kCmSpade,
          MinerKind::kCmSpam};
}

std::string_view miner_name(MinerKind kind) {
  switch (kind) {
    case MinerKind::kPrefixSpan: return "PrefixSpan";
    case MinerKind::kGsp: return "GSP";
    case MinerKind::kSpade: return "SPADE";
    case MinerKind::kSpam: return "SPAM";
    case MinerKind::kLapin: return "LAPIN-SPAM";
    case MinerKind::kCmSpade: return "CM-SPADE";
    case MinerKind::kCmSpam: return "CM-SPAM";
  }
  return "?";
}

}  // namespace mars::fsm
