#pragma once
// Reference miner: enumerate every candidate pattern occurring in the
// database and count supports by scanning. Exponentially slower than the
// real miners but obviously correct — the property tests cross-validate
// all seven algorithms against it. Always sequential; `params.threads`
// is ignored.

#include "fsm/miner.hpp"

namespace mars::fsm {

class BruteForce final : public Miner {
 public:
  [[nodiscard]] MineResult mine_with_stats(
      const SequenceDatabase& db, const MiningParams& params,
      parallel::ThreadPool* pool = nullptr) const override;
  [[nodiscard]] std::string_view name() const override {
    return "BruteForce";
  }
};

}  // namespace mars::fsm
