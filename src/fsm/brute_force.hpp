#pragma once
// Reference miner: enumerate every candidate pattern occurring in the
// database and count supports by scanning. Exponentially slower than the
// real miners but obviously correct — the property tests cross-validate
// all seven algorithms against it.

#include "fsm/miner.hpp"

namespace mars::fsm {

class BruteForce final : public Miner {
 public:
  [[nodiscard]] std::vector<Pattern> mine(
      const SequenceDatabase& db, const MiningParams& params) const override;
  [[nodiscard]] std::string_view name() const override {
    return "BruteForce";
  }
};

}  // namespace mars::fsm
