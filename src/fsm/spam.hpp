#pragma once
// SPAM (Ayres et al., KDD'02): depth-first search over per-sequence
// position bitmaps with S-step extension, plus two published refinements:
//
//   - LAPIN-SPAM (Yang & Kitsuregawa, ICDEW'05): last-position induction —
//     an extension item whose last occurrence in a sequence is not after
//     the prefix's first end position cannot extend it there, so the
//     bitmap AND is skipped for that sequence;
//   - CM-SPAM (Fournier-Viger et al., PAKDD'14): co-occurrence-map pruning
//     of candidate extensions.
//
// Bitmaps are multi-word (ceil(len/64) words per sequence), so sequences
// of any length are supported — the historical one-word-per-sequence
// layout threw on paths longer than 64 hops, aborting live diagnoses.

#include "fsm/miner.hpp"

namespace mars::fsm {

class Spam : public Miner {
 public:
  struct Options {
    bool use_lapin = false;
    bool use_cmap = false;
  };

  Spam() : options_{} {}
  explicit Spam(Options options) : options_(options) {}

  [[nodiscard]] MineResult mine_with_stats(
      const SequenceDatabase& db, const MiningParams& params,
      parallel::ThreadPool* pool = nullptr) const override;
  [[nodiscard]] std::string_view name() const override {
    if (options_.use_cmap) return "CM-SPAM";
    if (options_.use_lapin) return "LAPIN-SPAM";
    return "SPAM";
  }

 private:
  Options options_;
};

}  // namespace mars::fsm
