#pragma once
// PrefixSpan (Pei et al., ICDE'01): pattern growth over projected
// databases, here with pseudo-projection — projected databases are
// (entry, end) pairs in a per-task scratch arena, not copied structures.
// The paper's evaluation found it the fastest miner for MARS's short path
// sequences (§5.5, Fig. 11).

#include "fsm/miner.hpp"

namespace mars::fsm {

class PrefixSpan final : public Miner {
 public:
  [[nodiscard]] MineResult mine_with_stats(
      const SequenceDatabase& db, const MiningParams& params,
      parallel::ThreadPool* pool = nullptr) const override;
  [[nodiscard]] std::string_view name() const override { return "PrefixSpan"; }
};

}  // namespace mars::fsm
