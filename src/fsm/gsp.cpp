#include "fsm/gsp.hpp"

#include <algorithm>
#include <unordered_set>

#include "parallel/parallel_for.hpp"

namespace mars::fsm {
namespace {

struct SeqHash {
  std::size_t operator()(const Sequence& s) const noexcept {
    std::size_t h = 1469598103u;
    for (const Item i : s) h = (h ^ i) * 1099511628211ull;
    return h;
  }
};

// Approximate heap bytes of one hash-set node holding a k-item sequence:
// the Sequence header, its key storage, and the node/bucket overhead. The
// support-count structures dominated GSP's real footprint but the old
// accounting ignored everything except the candidate vector.
std::size_t set_node_bytes(std::size_t k) {
  return sizeof(Sequence) + k * sizeof(Item) + 2 * sizeof(void*);
}

}  // namespace

MineResult Gsp::mine_with_stats(const SequenceDatabase& db,
                                const MiningParams& params,
                                parallel::ThreadPool* pool) const {
  const MineTimer timer;
  MineResult res;
  if (db.empty() || params.max_length == 0) {
    res.stats.wall_seconds = timer.seconds();
    return res;
  }
  const std::uint64_t min_sup = params.effective_min_support(db.total());
  const auto entries = db.entries();
  const Item bound = db.item_bound();

  // L1: one scan for weighted item supports (dense, entry-deduplicated).
  std::vector<std::uint64_t> item_support(bound, 0);
  std::vector<std::uint32_t> mark(bound, 0);
  for (std::size_t e = 0; e < entries.size(); ++e) {
    for (const Item item : entries[e].items) {
      if (mark[item] != e + 1) {
        mark[item] = e + 1;
        item_support[item] += entries[e].count;
      }
    }
  }
  std::vector<Sequence> frequent_k;  // frequent patterns of current length
  std::vector<Item> frequent_items;
  for (Item item = 0; item < bound; ++item) {
    if (item_support[item] == 0) continue;
    ++res.stats.nodes_expanded;
    if (item_support[item] < min_sup) continue;
    res.patterns.push_back(Pattern{{item}, item_support[item]});
    frequent_k.push_back({item});
    frequent_items.push_back(item);
  }

  PoolGuard guard(params.threads, entries.size(), pool);
  std::size_t peak = frequent_k.size() * (sizeof(Sequence) + sizeof(Item)) +
                     bound * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
  for (std::size_t k = 2; k <= params.max_length && !frequent_k.empty();
       ++k) {
    // Candidate generation: join patterns whose (k-2)-suffix equals
    // another's (k-2)-prefix. For k == 2 this is the cross product.
    std::unordered_set<Sequence, SeqHash> frequent_set(frequent_k.begin(),
                                                       frequent_k.end());
    std::vector<Sequence> candidates;
    for (const auto& a : frequent_k) {
      for (const Item b : frequent_items) {
        Sequence cand = a;
        cand.push_back(b);
        if (k > 2) {
          // Apriori prune: the suffix of length k-1 must be frequent too.
          const Sequence suffix(cand.begin() + 1, cand.end());
          if (!frequent_set.count(suffix)) continue;
        }
        candidates.push_back(std::move(cand));
      }
    }

    // Support-count scan: each candidate's count is independent, so the
    // level fans out across the pool; `counts` is indexed by candidate
    // and every cell is written by exactly one task.
    std::vector<std::uint64_t> counts(candidates.size(), 0);
    const auto count_candidate = [&](std::size_t c) {
      std::uint64_t sup = 0;
      for (const auto& e : entries) {
        if (contains_pattern(e.items, candidates[c], params.contiguous)) {
          sup += e.count;
        }
      }
      counts[c] = sup;
    };
    if (guard.pool() != nullptr) {
      parallel::parallel_for(*guard.pool(), 0, candidates.size(),
                             count_candidate);
    } else {
      for (std::size_t c = 0; c < candidates.size(); ++c) count_candidate(c);
    }
    res.stats.nodes_expanded += candidates.size();

    // This level's working set: candidate sequences + their key storage,
    // the per-candidate counts, and the apriori hash set (old accounting
    // counted only the candidate vector, understating Fig. 11's memory
    // axis by the whole support-count side).
    peak = std::max(
        peak, candidates.size() * (sizeof(Sequence) + k * sizeof(Item) +
                                   sizeof(std::uint64_t)) +
                  frequent_set.size() * set_node_bytes(k - 1));

    frequent_k.clear();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] >= min_sup) {
        res.patterns.push_back(Pattern{candidates[c], counts[c]});
        frequent_k.push_back(std::move(candidates[c]));
      }
    }
  }
  res.stats.patterns = res.patterns.size();
  res.stats.peak_bytes = peak;
  res.stats.threads_used = guard.threads_used();
  res.stats.wall_seconds = timer.seconds();
  return res;
}

}  // namespace mars::fsm
