#include "fsm/gsp.hpp"

#include <unordered_map>
#include <unordered_set>

namespace mars::fsm {
namespace {

struct SeqHash {
  std::size_t operator()(const Sequence& s) const noexcept {
    std::size_t h = 1469598103u;
    for (const Item i : s) h = (h ^ i) * 1099511628211ull;
    return h;
  }
};

}  // namespace

std::vector<Pattern> Gsp::mine(const SequenceDatabase& db,
                               const MiningParams& params) const {
  std::vector<Pattern> out;
  last_memory_bytes_ = 0;
  if (db.empty() || params.max_length == 0) return out;
  const std::uint64_t min_sup = params.effective_min_support(db.total());
  const auto entries = db.entries();

  // L1: scan once for item supports.
  std::unordered_map<Item, std::uint64_t> item_support;
  for (const auto& e : entries) {
    std::unordered_set<Item> distinct(e.items.begin(), e.items.end());
    for (const Item item : distinct) item_support[item] += e.count;
  }
  std::vector<Sequence> frequent_k;  // frequent patterns of current length
  std::vector<Item> frequent_items;
  for (const auto& [item, sup] : item_support) {
    if (sup >= min_sup) {
      out.push_back(Pattern{{item}, sup});
      frequent_k.push_back({item});
      frequent_items.push_back(item);
    }
  }

  std::size_t peak = frequent_k.size() * sizeof(Sequence);
  for (std::size_t k = 2;
       k <= params.max_length && !frequent_k.empty(); ++k) {
    // Candidate generation: join patterns whose (k-2)-suffix equals
    // another's (k-2)-prefix. For k == 2 this is the cross product.
    std::unordered_set<Sequence, SeqHash> frequent_set(frequent_k.begin(),
                                                       frequent_k.end());
    std::vector<Sequence> candidates;
    for (const auto& a : frequent_k) {
      for (const Item b : frequent_items) {
        Sequence cand = a;
        cand.push_back(b);
        if (k > 2) {
          // Apriori prune: the suffix of length k-1 must be frequent too.
          const Sequence suffix(cand.begin() + 1, cand.end());
          if (!frequent_set.count(suffix)) continue;
        }
        candidates.push_back(std::move(cand));
      }
    }
    peak = std::max(peak, candidates.size() * (sizeof(Sequence) +
                                               k * sizeof(Item)));

    // Support-count scan.
    std::unordered_map<Sequence, std::uint64_t, SeqHash> counts;
    for (const auto& e : entries) {
      for (const auto& cand : candidates) {
        if (contains_pattern(e.items, cand, params.contiguous)) {
          counts[cand] += e.count;
        }
      }
    }
    frequent_k.clear();
    for (auto& [cand, sup] : counts) {
      if (sup >= min_sup) {
        out.push_back(Pattern{cand, sup});
        frequent_k.push_back(cand);
      }
    }
  }
  last_memory_bytes_ = peak;
  return out;
}

}  // namespace mars::fsm
