#pragma once
// SPADE (Zaki, MLJ'01): vertical id-lists joined by temporal position, and
// CM-SPADE (Fournier-Viger et al., PAKDD'14): SPADE plus a co-occurrence
// map (CMAP) that prunes candidate joins whose 2-pattern support is
// already below threshold. DFS fans out per frequent root item through
// the shared engine; id-list joins themselves are unchanged.

#include "fsm/miner.hpp"

namespace mars::fsm {

class Spade : public Miner {
 public:
  explicit Spade(bool use_cmap = false) : use_cmap_(use_cmap) {}

  [[nodiscard]] MineResult mine_with_stats(
      const SequenceDatabase& db, const MiningParams& params,
      parallel::ThreadPool* pool = nullptr) const override;
  [[nodiscard]] std::string_view name() const override {
    return use_cmap_ ? "CM-SPADE" : "SPADE";
  }

 private:
  bool use_cmap_;
};

}  // namespace mars::fsm
