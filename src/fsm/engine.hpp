#pragma once
// Shared parallel mining engine for the seven Fig. 11 miners.
//
// Every miner in src/fsm/ reduces to the same shape: one cheap sequential
// scan builds the frequent 1-item frontier, then each frontier root is
// expanded by an independent DFS (or, for GSP, a level-wise candidate
// scan). The engine runs those independent units either inline
// (threads == 1 — no pool, no synchronization, bit-identical to the
// historical sequential code) or split across a parallel::ThreadPool.
//
// Determinism: each root owns a private TaskSink; the per-root pattern
// buffers are concatenated in root order after all tasks finish, so the
// emitted pattern sequence is IDENTICAL for every thread count — even
// before sort_patterns() canonicalization. Stats are likewise
// thread-count-independent (peak_bytes counts the shared base plus the
// single widest root task, not a racy sum over concurrent tasks).

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "fsm/sequence.hpp"

namespace mars::parallel {
class ThreadPool;
}  // namespace mars::parallel

namespace mars::fsm {

/// Per-call mining cost report (Fig. 11's runtime and memory axes).
/// Returned by value from mine_with_stats(); safe under concurrent
/// mine() calls on one Miner object.
struct MiningStats {
  std::size_t patterns = 0;        ///< frequent patterns emitted
  std::size_t nodes_expanded = 0;  ///< candidates whose support was evaluated
  /// Peak auxiliary bytes: shared base structures plus the widest single
  /// root task. Independent of thread count by construction.
  std::size_t peak_bytes = 0;
  double wall_seconds = 0.0;  ///< wall-clock duration of the mine() call
  std::size_t threads_used = 1;
};

struct MineResult {
  std::vector<Pattern> patterns;
  MiningStats stats;
};

/// Pattern buffer + cost accounting for one root expansion. Owned by
/// exactly one task at a time; no synchronization inside expanders.
class TaskSink {
 public:
  void emit(const Sequence& items, std::uint64_t support) {
    patterns_.push_back(Pattern{items, support});
  }
  /// Count one support evaluation (a DFS node or scanned candidate).
  void count_node(std::size_t n = 1) { nodes_ += n; }
  /// Charge/release live auxiliary bytes; peak is tracked automatically.
  void charge(std::size_t bytes) {
    live_ += bytes;
    if (live_ > peak_) peak_ = live_;
  }
  void release(std::size_t bytes) { live_ -= bytes; }

  [[nodiscard]] std::vector<Pattern>& patterns() { return patterns_; }
  [[nodiscard]] std::size_t nodes() const { return nodes_; }
  [[nodiscard]] std::size_t peak_bytes() const { return peak_; }

 private:
  std::vector<Pattern> patterns_;
  std::size_t nodes_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_ = 0;
};

/// Expand everything under frontier root `root` into `sink`.
using RootExpander = std::function<void(std::size_t root, TaskSink& sink)>;

/// Resolves the pool a mine() call should use: the caller-provided one,
/// a private pool created for this call (threads > 1 and work to split),
/// or none (sequential). Keeping pool creation here means a sequential
/// run never spawns a thread — important for the goldens and for TSan.
class PoolGuard {
 public:
  PoolGuard(std::size_t threads, std::size_t work_items,
            parallel::ThreadPool* external);
  ~PoolGuard();

  /// nullptr when the call should run inline.
  [[nodiscard]] parallel::ThreadPool* pool() const { return pool_; }
  [[nodiscard]] std::size_t threads_used() const { return threads_used_; }

 private:
  std::unique_ptr<parallel::ThreadPool> owned_;
  parallel::ThreadPool* pool_ = nullptr;
  std::size_t threads_used_ = 1;
};

/// Run `expand` for every root in [0, roots) — inline when `pool` is
/// null, else fanned out root-per-task — and append the per-root buffers
/// to `out` in root order. `base_bytes` charges the shared structures
/// (vertical representations, co-occurrence maps) that exist for the
/// whole call. Returns aggregate stats (wall_seconds/threads_used are
/// filled by the caller, which owns the full-call timer and PoolGuard).
MiningStats run_roots(std::size_t roots, std::size_t base_bytes,
                      const RootExpander& expand, std::vector<Pattern>& out,
                      parallel::ThreadPool* pool);

/// Monotonic wall-clock timer for MiningStats::wall_seconds.
class MineTimer {
 public:
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace mars::fsm
