#pragma once
// GSP (Srikant & Agrawal, EDBT'96): level-wise candidate generation with a
// full database scan per level — the classic apriori-style baseline among
// the Fig. 11 miners. The per-level support-count scan is embarrassingly
// parallel over candidates and fans out across the engine's pool.

#include "fsm/miner.hpp"

namespace mars::fsm {

class Gsp final : public Miner {
 public:
  [[nodiscard]] MineResult mine_with_stats(
      const SequenceDatabase& db, const MiningParams& params,
      parallel::ThreadPool* pool = nullptr) const override;
  [[nodiscard]] std::string_view name() const override { return "GSP"; }
};

}  // namespace mars::fsm
