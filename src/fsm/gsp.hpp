#pragma once
// GSP (Srikant & Agrawal, EDBT'96): level-wise candidate generation with a
// full database scan per level — the classic apriori-style baseline among
// the Fig. 11 miners.

#include "fsm/miner.hpp"

namespace mars::fsm {

class Gsp final : public Miner {
 public:
  [[nodiscard]] std::vector<Pattern> mine(
      const SequenceDatabase& db, const MiningParams& params) const override;
  [[nodiscard]] std::string_view name() const override { return "GSP"; }
};

}  // namespace mars::fsm
