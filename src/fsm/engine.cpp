#include "fsm/engine.hpp"

#include <algorithm>
#include <iterator>

#include "parallel/parallel_for.hpp"

namespace mars::fsm {

PoolGuard::PoolGuard(std::size_t threads, std::size_t work_items,
                     parallel::ThreadPool* external) {
  if (threads <= 1 || work_items <= 1) return;  // sequential
  threads_used_ = std::min(threads, work_items);
  if (external != nullptr) {
    pool_ = external;
    threads_used_ = std::min(threads_used_, external->size());
    if (threads_used_ <= 1) pool_ = nullptr;
    return;
  }
  owned_ = std::make_unique<parallel::ThreadPool>(threads_used_);
  pool_ = owned_.get();
}

PoolGuard::~PoolGuard() = default;

MiningStats run_roots(std::size_t roots, std::size_t base_bytes,
                      const RootExpander& expand, std::vector<Pattern>& out,
                      parallel::ThreadPool* pool) {
  MiningStats stats;
  stats.peak_bytes = base_bytes;
  if (roots == 0) {
    stats.patterns = out.size();
    return stats;
  }

  if (pool == nullptr) {
    // Sequential: one reusable sink, emitted straight into `out`.
    TaskSink sink;
    for (std::size_t root = 0; root < roots; ++root) {
      expand(root, sink);
      std::move(sink.patterns().begin(), sink.patterns().end(),
                std::back_inserter(out));
      sink.patterns().clear();
    }
    stats.nodes_expanded = sink.nodes();
    stats.peak_bytes = base_bytes + sink.peak_bytes();
    stats.patterns = out.size();
    return stats;
  }

  // Parallel: one private sink per root, concatenated in root order below,
  // so the output sequence matches the sequential run exactly.
  std::vector<TaskSink> sinks(roots);
  parallel::parallel_for(*pool, 0, roots,
                         [&](std::size_t root) { expand(root, sinks[root]); });

  std::size_t total = 0;
  std::size_t widest = 0;
  for (TaskSink& sink : sinks) {
    total += sink.patterns().size();
    stats.nodes_expanded += sink.nodes();
    widest = std::max(widest, sink.peak_bytes());
  }
  out.reserve(out.size() + total);
  for (TaskSink& sink : sinks) {
    std::move(sink.patterns().begin(), sink.patterns().end(),
              std::back_inserter(out));
  }
  stats.peak_bytes = base_bytes + widest;
  stats.patterns = out.size();
  return stats;
}

}  // namespace mars::fsm
